package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vaq/internal/api"
	"vaq/internal/explain"
	"vaq/internal/resilience"
	"vaq/internal/trace"
	"vaq/internal/vql"
)

// Config tunes the coordinator.
type Config struct {
	// Backends are the shard processes, in ring order.
	Backends []Backend
	// Replicas is the consistent-hash points per shard (0 picks
	// DefaultReplicas).
	Replicas int
	// RequestTimeout bounds each proxied or scattered call (default
	// 60s).
	RequestTimeout time.Duration
	// HedgeDelay launches a hedge replica for idempotent shard reads
	// that have not answered within the delay; 0 disables hedging.
	HedgeDelay time.Duration
	// BreakerFailures consecutive failures open a shard's circuit
	// breaker for BreakerCooldown (0 failures disables the breakers).
	BreakerFailures int
	BreakerCooldown time.Duration
	// BroadcastEvery is the period of the cross-shard B_lo^K bound
	// broadcast during a scatter; 0 disables it (shards then prune on
	// local progress only — same results, more work).
	BroadcastEvery time.Duration
	// ProbeTimeout bounds /healthz probes and bound-broadcast pushes
	// (default 2s).
	ProbeTimeout time.Duration
	// Tracer collects the shard.* counter family (one is created when
	// nil).
	Tracer *trace.Tracer
	// ExplainRing sizes the /explainz ring of coordinator query
	// profiles: 0 picks server.DefaultExplainRing's value (64),
	// negative disables collection.
	ExplainRing int
}

// defaultExplainRing mirrors server.DefaultExplainRing (the package
// cannot import server — server imports the vaq facade whose tests
// exercise this package).
const defaultExplainRing = 64

// defaultK mirrors the single-process server's default when neither K
// nor a LIMIT clause picks one.
const defaultK = 5

// Coordinator fronts a fleet of vaqd shard processes: global top-k
// queries scatter to every shard and merge deterministically;
// video-pinned top-k and session traffic route to the consistent-hash
// owner. See the package comment and docs/SHARDING.md.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	clients []*client
	mux     *http.ServeMux
	tracer  *trace.Tracer
	exRing  *explain.Ring

	qseq atomic.Int64
	salt string // per-process prefix keeping bound-exchange ids distinct across coordinators

	cScatters     *trace.Counter // shard.scatters — global top-k fan-outs
	cRouted       *trace.Counter // shard.routed — single-shard proxied calls
	cCalls        *trace.Counter // shard.calls — shard HTTP calls issued
	cHedges       *trace.Counter // shard.hedges — hedge replicas launched
	cFailures     *trace.Counter // shard.failures — calls failed (transport or 5xx)
	cBreakerSkips *trace.Counter // shard.breaker_skips — calls rejected by an open breaker
	cBoundRounds  *trace.Counter // shard.bound_rounds — completed bound broadcast rounds
	cPartials     *trace.Counter // shard.partials — scatters answered Incomplete
}

// New builds a coordinator over the given backends. The shard.* counter
// family is registered immediately so /varz shows it at zero.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("shard: coordinator needs at least one backend")
	}
	names := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		names[i] = b.Name
	}
	ring, err := NewRing(names, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.Tracer == nil {
		cfg.Tracer = trace.New()
	}
	ringSize := cfg.ExplainRing
	if ringSize == 0 {
		ringSize = defaultExplainRing
	}
	co := &Coordinator{
		cfg:    cfg,
		ring:   ring,
		tracer: cfg.Tracer,
		exRing: explain.NewRing(ringSize),
		salt:   fmt.Sprintf("%d-%d", os.Getpid(), time.Now().UnixNano()),
	}
	co.cScatters = cfg.Tracer.Counter("shard.scatters")
	co.cRouted = cfg.Tracer.Counter("shard.routed")
	co.cCalls = cfg.Tracer.Counter("shard.calls")
	co.cHedges = cfg.Tracer.Counter("shard.hedges")
	co.cFailures = cfg.Tracer.Counter("shard.failures")
	co.cBreakerSkips = cfg.Tracer.Counter("shard.breaker_skips")
	co.cBoundRounds = cfg.Tracer.Counter("shard.bound_rounds")
	co.cPartials = cfg.Tracer.Counter("shard.partials")

	hc := &http.Client{} // per-call deadlines come from contexts
	co.clients = make([]*client, len(cfg.Backends))
	for i, b := range cfg.Backends {
		br := resilience.NewBreaker(cfg.BreakerFailures, cfg.BreakerCooldown)
		co.clients[i] = newClient(b, hc, br, cfg.HedgeDelay, co.cHedges)
	}

	co.mux = http.NewServeMux()
	co.mux.HandleFunc("POST /v1/topk", co.handleTopK)
	co.mux.HandleFunc("POST /v1/sessions", co.handleCreateSession)
	co.mux.HandleFunc("GET /v1/sessions", co.handleListSessions)
	co.mux.HandleFunc("GET /v1/sessions/{id}", co.handleSessionGet)
	co.mux.HandleFunc("GET /v1/sessions/{id}/results", co.handleSessionResults)
	co.mux.HandleFunc("DELETE /v1/sessions/{id}", co.handleSessionDelete)
	co.mux.HandleFunc("GET /healthz", co.handleHealthz)
	co.mux.HandleFunc("GET /metricsz", co.handleMetricsz)
	co.mux.HandleFunc("GET /explainz", co.handleExplainz)
	co.mux.HandleFunc("GET /varz", co.handleVarz)
	return co, nil
}

// Handler returns the coordinator's HTTP surface.
func (co *Coordinator) Handler() http.Handler { return co.mux }

// Ring exposes the partition for out-of-band placement (tests, ingest
// tooling).
func (co *Coordinator) Ring() *Ring { return co.ring }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string, pos *int) {
	writeJSON(w, status, api.ErrorResponse{Error: api.ErrorBody{Code: code, Message: msg, Pos: pos}})
}

// copyResponse relays a shard's response verbatim (status + JSON body).
func copyResponse(w http.ResponseWriter, res callResult) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// writeShardFailure maps a failed single-shard call onto the gateway
// error vocabulary.
func (co *Coordinator) writeShardFailure(w http.ResponseWriter, cl *client, err error) {
	if err == errBreakerOpen {
		co.cBreakerSkips.Add(1)
	}
	writeErr(w, http.StatusBadGateway, "shard_unavailable",
		fmt.Sprintf("shard %s (%s): %v", cl.backend.Name, cl.backend.Addr, err), nil)
}

// ---- top-k ----

func (co *Coordinator) handleTopK(w http.ResponseWriter, r *http.Request) {
	var req api.TopKRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error(), nil)
		return
	}
	if req.BoundQuery != "" {
		writeErr(w, http.StatusBadRequest, "bad_request",
			"bound_query is shard-internal; the coordinator mints its own exchange ids", nil)
		return
	}
	if req.Video != "" {
		co.routeTopK(w, r, req)
		return
	}
	co.scatterTopK(w, r, req)
}

// routeTopK proxies a video-pinned query to the owning shard.
func (co *Coordinator) routeTopK(w http.ResponseWriter, r *http.Request, req api.TopKRequest) {
	co.cRouted.Add(1)
	co.cCalls.Add(1)
	cl := co.clients[co.ring.OwnerIndex(req.Video)]
	body, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error(), nil)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.RequestTimeout)
	defer cancel()
	res, err := cl.call(ctx, http.MethodPost, "/v1/topk", body, true)
	if err != nil {
		co.cFailures.Add(1)
		co.writeShardFailure(w, cl, err)
		return
	}
	copyResponse(w, res)
}

// legResult is one shard's answer to a scattered top-k.
type legResult struct {
	resp    api.TopKResponse
	ok      bool
	status  int
	errBody *api.ErrorBody
	err     error
	hedged  bool
	dur     time.Duration
}

// scatterTopK fans a global top-k out to every shard, runs the bound
// broadcast while the legs are in flight, and merges the survivors'
// rankings deterministically (score desc, then video, then start clip
// — the same total order the single-process merge uses, so a scatter
// over any partition of the repository is byte-identical to the union
// run).
func (co *Coordinator) scatterTopK(w http.ResponseWriter, r *http.Request, req api.TopKRequest) {
	co.cScatters.Add(1)
	start := time.Now()

	k := req.K
	if req.Query != "" {
		// Parse here only to learn K for the merge truncation (and to
		// fail malformed queries before burning a scatter); full
		// validation stays shard-side.
		plan, err := vql.ParseAndCompile(req.Query)
		if err != nil {
			var pos *int
			if p, ok := vql.ErrPosition(err); ok {
				pos = &p
			}
			writeErr(w, http.StatusBadRequest, "invalid_query", err.Error(), pos)
			return
		}
		if plan.K > 0 {
			k = plan.K
		}
	}
	if k <= 0 {
		k = defaultK
	}

	qid := fmt.Sprintf("c%d", co.qseq.Add(1))
	shardReq := req
	shardReq.Video = ""
	// Ask shards for their inline EXPLAIN profile so the merged profile
	// attributes engine counters per shard exactly; stripped from the
	// client response unless it asked.
	shardReq.Explain = true
	broadcast := co.cfg.BroadcastEvery > 0 && len(co.clients) > 1
	if broadcast {
		shardReq.BoundQuery = co.salt + "-" + qid
	}
	body, err := json.Marshal(shardReq)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error(), nil)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.RequestTimeout)
	defer cancel()
	legs := make([]legResult, len(co.clients))
	var wg sync.WaitGroup
	for i, cl := range co.clients {
		wg.Add(1)
		go func(i int, cl *client) {
			defer wg.Done()
			legs[i] = co.topkLeg(ctx, cl, body)
		}(i, cl)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if broadcast {
		co.broadcastBounds(ctx, shardReq.BoundQuery, done)
	}
	<-done

	co.mergeTopK(w, req, k, qid, legs, start)
}

// topkLeg runs one scatter leg against one shard.
func (co *Coordinator) topkLeg(ctx context.Context, cl *client, body []byte) legResult {
	co.cCalls.Add(1)
	legStart := time.Now()
	res, err := cl.call(ctx, http.MethodPost, "/v1/topk", body, true)
	lr := legResult{err: err, status: res.status, hedged: res.hedged, dur: time.Since(legStart)}
	if err != nil {
		if err == errBreakerOpen {
			co.cBreakerSkips.Add(1)
		}
		co.cFailures.Add(1)
		return lr
	}
	if res.status != http.StatusOK {
		if res.status >= 500 {
			co.cFailures.Add(1)
		}
		var eresp api.ErrorResponse
		if json.Unmarshal(res.body, &eresp) == nil && eresp.Error.Code != "" {
			lr.errBody = &eresp.Error
		}
		return lr
	}
	if err := json.Unmarshal(res.body, &lr.resp); err != nil {
		lr.err = fmt.Errorf("decoding shard response: %w", err)
		co.cFailures.Add(1)
		return lr
	}
	lr.ok = true
	return lr
}

// broadcastBounds drives the cross-shard B_lo^K exchange for one
// scatter: every BroadcastEvery it walks the shards, pushing the best
// bound seen so far and folding each shard's reply into the running
// maximum, until every leg has finished. A shard's exported bound is a
// sound global lower bound on the k-th best score (its candidate set is
// a subset of the fleet's — see rvaq.GlobalBound), and the fold is a
// monotone max, so the broadcast can only tighten pruning: it changes
// work counts, never results. Pushes are best-effort and bypass the
// breakers — a missed round costs pruning opportunity, nothing else.
func (co *Coordinator) broadcastBounds(ctx context.Context, id string, done <-chan struct{}) {
	ticker := time.NewTicker(co.cfg.BroadcastEvery)
	defer ticker.Stop()
	best := math.Inf(-1)
	for {
		select {
		case <-done:
			return
		case <-ctx.Done():
			return
		case <-ticker.C:
			for _, cl := range co.clients {
				breq := api.BoundExchangeRequest{Query: id}
				if !math.IsInf(best, -1) {
					b := best
					breq.Bound = &b
				}
				pbody, err := json.Marshal(breq)
				if err != nil {
					continue
				}
				pctx, cancel := context.WithTimeout(ctx, co.cfg.ProbeTimeout)
				res := cl.attempt(pctx, http.MethodPost, "/v1/shard/bound", pbody)
				cancel()
				if res.err != nil || res.status != http.StatusOK {
					continue
				}
				var br api.BoundExchangeResponse
				if json.Unmarshal(res.body, &br) != nil {
					continue
				}
				if br.Bound != nil && *br.Bound > best {
					best = *br.Bound
				}
			}
			co.cBoundRounds.Add(1)
		}
	}
}

// mergeTopK classifies the legs and writes the merged response.
func (co *Coordinator) mergeTopK(w http.ResponseWriter, req api.TopKRequest, k int, qid string, legs []legResult, start time.Time) {
	var (
		entries      []api.TopKEntry
		resp         api.TopKResponse
		okCount      int
		failedCount  int
		notIngested  int
		clientErr    *legResult
		unknownLabel *api.ErrorBody
	)
	for i := range legs {
		lr := &legs[i]
		switch {
		case lr.ok:
			okCount++
			entries = append(entries, lr.resp.Results...)
			resp.RandomAccesses += lr.resp.RandomAccesses
			resp.Candidates += lr.resp.Candidates
			resp.DegradedClips += lr.resp.DegradedClips
			if lr.resp.CPURuntimeUS > 0 {
				resp.CPURuntimeUS += lr.resp.CPURuntimeUS
			} else {
				resp.CPURuntimeUS += lr.resp.RuntimeUS
			}
			resp.Incomplete = resp.Incomplete || lr.resp.Incomplete
		case lr.err != nil:
			failedCount++
		case lr.status == http.StatusBadRequest && lr.errBody != nil && lr.errBody.Code == "unknown_label":
			// This shard's partition simply has no clips under the
			// label — a no-contribution answer, not a failure, unless
			// every shard says so.
			notIngested++
			if unknownLabel == nil {
				unknownLabel = lr.errBody
			}
		case lr.status >= 400 && lr.status < 500:
			// The request itself is bad; every healthy shard would give
			// the same verdict. Relay the first one.
			if clientErr == nil {
				clientErr = lr
			}
		default:
			failedCount++ // 5xx (shed, deadline, crash) or malformed
		}
	}

	switch {
	case clientErr != nil:
		var pos *int
		code, msg := "shard_error", fmt.Sprintf("shard returned http %d", clientErr.status)
		if clientErr.errBody != nil {
			code, msg, pos = clientErr.errBody.Code, clientErr.errBody.Message, clientErr.errBody.Pos
		}
		writeErr(w, clientErr.status, code, msg, pos)
		return
	case okCount == 0 && notIngested == 0:
		writeErr(w, http.StatusBadGateway, "shards_unavailable",
			fmt.Sprintf("no shard answered (%d of %d failed)", failedCount, len(co.clients)), nil)
		return
	case failedCount > 0 && !req.Partial:
		writeErr(w, http.StatusBadGateway, "shard_failed",
			fmt.Sprintf("%d of %d shards failed; set partial=true to accept the survivors' merged results", failedCount, len(co.clients)), nil)
		return
	case okCount == 0 && failedCount == 0:
		// Every shard answered unknown_label: the label genuinely is not
		// ingested anywhere.
		writeErr(w, http.StatusBadRequest, unknownLabel.Code, unknownLabel.Message, nil)
		return
	}
	if failedCount > 0 {
		resp.Incomplete = true
		co.cPartials.Add(1)
	}

	// The same total order the single-process global merge uses — with
	// it, the scatter is byte-identical to the union run.
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		if ea.Score != eb.Score {
			return ea.Score > eb.Score
		}
		if ea.Video != eb.Video {
			return ea.Video < eb.Video
		}
		return ea.Seq.Lo < eb.Seq.Lo
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	if entries == nil {
		entries = []api.TopKEntry{}
	}
	resp.Results = entries
	resp.RuntimeUS = time.Since(start).Microseconds()

	if co.exRing != nil || req.Explain {
		p := co.assembleExplain(req, k, qid, legs, start)
		co.exRing.Add(p)
		if req.Explain {
			resp.Explain = &p
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// assembleExplain builds the coordinator's EXPLAIN profile: one
// ShardProfile per leg, whose fold (explain.Collector.AddShard) keeps
// the merged TopK section the exact field-wise sum of the per-shard
// engine counters — the cross-process reconciliation invariant.
func (co *Coordinator) assembleExplain(req api.TopKRequest, k int, qid string, legs []legResult, start time.Time) explain.Profile {
	col := explain.NewCollector("coordinator")
	col.SetID(qid)
	col.SetQuery(req.Query)
	col.SetWorkload("global")
	col.TopKConfigure(k)
	for i := range legs {
		col.AddShard(shardProfile(co.clients[i], &legs[i]))
	}
	col.SetDurUS(time.Since(start).Microseconds())
	return col.Profile()
}

// shardProfile converts one leg into its EXPLAIN attribution row.
// Failed legs carry the reason and zero cost; healthy legs prefer the
// shard's inline profile (exact engine counters) over the response
// aggregates.
func shardProfile(cl *client, lr *legResult) explain.ShardProfile {
	sp := explain.ShardProfile{
		Shard:  cl.backend.Name,
		Addr:   cl.backend.Addr,
		DurUS:  lr.dur.Microseconds(),
		Hedged: lr.hedged,
	}
	if !lr.ok {
		sp.Failed = true
		switch {
		case lr.err != nil:
			sp.Error = lr.err.Error()
		case lr.errBody != nil:
			sp.Error = lr.errBody.Code
		default:
			sp.Error = fmt.Sprintf("http %d", lr.status)
		}
		return sp
	}
	sp.Results = len(lr.resp.Results)
	sp.Candidates = lr.resp.Candidates
	sp.RandomAccesses = lr.resp.RandomAccesses
	sp.Incomplete = lr.resp.Incomplete
	if ex := lr.resp.Explain; ex != nil && ex.TopK != nil {
		tk := ex.TopK
		sp.Candidates = tk.Candidates
		sp.Iterations = tk.Iterations
		sp.RandomAccesses = tk.RandomAccesses
		sp.SortedAccesses = tk.SortedAccesses
		sp.SeqsPruned = tk.SeqsPruned
		sp.ClipsPruned = tk.ClipsPruned
	}
	return sp
}

// ---- sessions ----

// Session ids are namespaced "<shardIdx>~<shardLocalID>" so routing a
// follow-up call needs no coordinator state: the id itself says which
// shard owns the session (and survives a coordinator restart).
const sessionIDSep = "~"

func publicID(idx int, id string) string {
	return strconv.Itoa(idx) + sessionIDSep + id
}

func parsePublicID(pub string) (int, string, error) {
	head, rest, ok := strings.Cut(pub, sessionIDSep)
	if !ok {
		return 0, "", fmt.Errorf("no %q separator", sessionIDSep)
	}
	idx, err := strconv.Atoi(head)
	if err != nil {
		return 0, "", err
	}
	return idx, rest, nil
}

func (co *Coordinator) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", "malformed request body: "+err.Error(), nil)
		return
	}
	if req.Workload == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "workload is required", nil)
		return
	}
	co.cRouted.Add(1)
	co.cCalls.Add(1)
	idx := co.ring.OwnerIndex(req.Workload)
	cl := co.clients[idx]
	body, err := json.Marshal(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error(), nil)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.RequestTimeout)
	defer cancel()
	res, cerr := cl.call(ctx, http.MethodPost, "/v1/sessions", body, false)
	if cerr != nil {
		co.cFailures.Add(1)
		co.writeShardFailure(w, cl, cerr)
		return
	}
	if res.status != http.StatusCreated {
		copyResponse(w, res)
		return
	}
	var info api.SessionInfo
	if err := json.Unmarshal(res.body, &info); err != nil {
		writeErr(w, http.StatusBadGateway, "bad_shard_response", err.Error(), nil)
		return
	}
	info.ID = publicID(idx, info.ID)
	writeJSON(w, http.StatusCreated, info)
}

func (co *Coordinator) handleListSessions(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.RequestTimeout)
	defer cancel()
	type shardList struct {
		list api.SessionList
		ok   bool
	}
	lists := make([]shardList, len(co.clients))
	var wg sync.WaitGroup
	for i, cl := range co.clients {
		wg.Add(1)
		go func(i int, cl *client) {
			defer wg.Done()
			co.cCalls.Add(1)
			res, err := cl.call(ctx, http.MethodGet, "/v1/sessions", nil, false)
			if err != nil || res.status != http.StatusOK {
				// A down shard's sessions are invisible until it heals;
				// /healthz reports the outage.
				co.cFailures.Add(1)
				return
			}
			if json.Unmarshal(res.body, &lists[i].list) == nil {
				lists[i].ok = true
			}
		}(i, cl)
	}
	wg.Wait()
	merged := api.SessionList{Sessions: []api.SessionInfo{}}
	for i := range lists {
		if !lists[i].ok {
			continue
		}
		for _, s := range lists[i].list.Sessions {
			s.ID = publicID(i, s.ID)
			merged.Sessions = append(merged.Sessions, s)
		}
	}
	sort.Slice(merged.Sessions, func(a, b int) bool { return merged.Sessions[a].ID < merged.Sessions[b].ID })
	writeJSON(w, http.StatusOK, merged)
}

// sessionShard resolves a namespaced session id to its owning shard.
func (co *Coordinator) sessionShard(w http.ResponseWriter, pub string) (*client, int, string, bool) {
	idx, id, err := parsePublicID(pub)
	if err != nil || idx < 0 || idx >= len(co.clients) || id == "" {
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("%q is not a coordinator session id (want <shard>%s<id>)", pub, sessionIDSep), nil)
		return nil, 0, "", false
	}
	return co.clients[idx], idx, id, true
}

// proxySession forwards one session call to the owning shard,
// re-namespacing the id fields in the known response shapes.
func (co *Coordinator) proxySession(w http.ResponseWriter, r *http.Request, method, path string, idx int, cl *client) {
	co.cRouted.Add(1)
	co.cCalls.Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.RequestTimeout)
	defer cancel()
	res, err := cl.call(ctx, method, path, nil, false)
	if err != nil {
		co.cFailures.Add(1)
		co.writeShardFailure(w, cl, err)
		return
	}
	if res.status != http.StatusOK {
		copyResponse(w, res)
		return
	}
	if strings.HasSuffix(strings.SplitN(path, "?", 2)[0], "/results") {
		var rr api.ResultsResponse
		if json.Unmarshal(res.body, &rr) == nil {
			if rr.ID != "" {
				rr.ID = publicID(idx, rr.ID)
			}
			writeJSON(w, http.StatusOK, rr)
			return
		}
	} else {
		var info api.SessionInfo
		if json.Unmarshal(res.body, &info) == nil {
			info.ID = publicID(idx, info.ID)
			writeJSON(w, http.StatusOK, info)
			return
		}
	}
	copyResponse(w, res)
}

func (co *Coordinator) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	cl, idx, id, ok := co.sessionShard(w, r.PathValue("id"))
	if !ok {
		return
	}
	co.proxySession(w, r, http.MethodGet, "/v1/sessions/"+url.PathEscape(id), idx, cl)
}

func (co *Coordinator) handleSessionResults(w http.ResponseWriter, r *http.Request) {
	cl, idx, id, ok := co.sessionShard(w, r.PathValue("id"))
	if !ok {
		return
	}
	path := "/v1/sessions/" + url.PathEscape(id) + "/results"
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	co.proxySession(w, r, http.MethodGet, path, idx, cl)
}

func (co *Coordinator) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	cl, idx, id, ok := co.sessionShard(w, r.PathValue("id"))
	if !ok {
		return
	}
	co.proxySession(w, r, http.MethodDelete, "/v1/sessions/"+url.PathEscape(id), idx, cl)
}

// ---- observability ----

func (co *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), co.cfg.ProbeTimeout)
	defer cancel()
	resp := api.CoordHealthzResponse{Shards: make([]api.ShardHealth, len(co.clients))}
	var wg sync.WaitGroup
	for i, cl := range co.clients {
		wg.Add(1)
		go func(i int, cl *client) {
			defer wg.Done()
			sh := api.ShardHealth{
				Name:    cl.backend.Name,
				Addr:    cl.backend.Addr,
				Breaker: cl.breaker.State().String(),
			}
			// Probes bypass the breaker on purpose: they are how an open
			// shard is observed healing.
			res := cl.attempt(ctx, http.MethodGet, "/healthz", nil)
			switch {
			case res.err != nil:
				sh.Error = res.err.Error()
			case res.status != http.StatusOK:
				sh.Error = fmt.Sprintf("http %d", res.status)
			default:
				var hz api.HealthzResponse
				if err := json.Unmarshal(res.body, &hz); err != nil {
					sh.Error = err.Error()
				} else {
					sh.OK = true
					sh.Status = hz.Status
					sh.BrownoutLevel = hz.BrownoutLevel
				}
			}
			resp.Shards[i] = sh
		}(i, cl)
	}
	wg.Wait()
	up := 0
	for _, sh := range resp.Shards {
		if sh.OK {
			up++
		}
	}
	status := http.StatusOK
	switch {
	case up == len(resp.Shards):
		resp.Status = "ok"
	case up > 0:
		resp.Status = "degraded"
	default:
		resp.Status = "unavailable"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

func (co *Coordinator) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	resp := api.CoordMetricszResponse{
		Scatters:    co.cScatters.Value(),
		Routed:      co.cRouted.Value(),
		Partials:    co.cPartials.Value(),
		BoundRounds: co.cBoundRounds.Value(),
		Shards:      make([]api.CoordShardMetrics, len(co.clients)),
	}
	for i, cl := range co.clients {
		resp.Shards[i] = api.CoordShardMetrics{
			Name:         cl.backend.Name,
			Addr:         cl.backend.Addr,
			Calls:        cl.calls.Load(),
			Failures:     cl.failures.Load(),
			Hedges:       cl.hedges.Load(),
			Breaker:      cl.breaker.State().String(),
			BreakerOpens: cl.breaker.Opens(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (co *Coordinator) handleExplainz(w http.ResponseWriter, r *http.Request) {
	if co.exRing == nil {
		writeErr(w, http.StatusNotFound, "explain_disabled",
			"EXPLAIN collection is disabled (-explain-ring negative)", nil)
		return
	}
	profiles := co.exRing.Snapshot()
	writeJSON(w, http.StatusOK, api.ExplainzResponse{
		Total:    co.exRing.Total(),
		Retained: len(profiles),
		Profiles: profiles,
	})
}

func (co *Coordinator) handleVarz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	co.tracer.WriteVarz(w)
}
