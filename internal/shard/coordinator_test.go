package shard_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"vaq"
	"vaq/internal/api"
	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/server"
	"vaq/internal/shard"
	"vaq/internal/synth"
	"vaq/internal/trace"
)

// ---- shared corpus ----

// The corpus is built once: n distinct synthetic videos that all carry
// the q2 labels (blowing_leaves; car, plant), so one query has
// candidates in every video and therefore on every shard.
var (
	corpusOnce sync.Once
	corpusVids map[string]*vaq.VideoData
	corpusQ    vaq.Query
	corpusErr  error
)

const corpusN = 6

func corpus(t testing.TB) (map[string]*vaq.VideoData, vaq.Query) {
	t.Helper()
	corpusOnce.Do(func() {
		spec, q, err := synth.YouTubeSpec("q2", vaq.DefaultGeometry())
		if err != nil {
			corpusErr = err
			return
		}
		spec = spec.Scaled(0.06)
		corpusQ = q
		corpusVids = map[string]*vaq.VideoData{}
		for i := 0; i < corpusN; i++ {
			s := spec
			s.Name = fmt.Sprintf("v%02d", i)
			s.Seed = spec.Seed + int64(1+97*i)
			w, err := synth.Generate(s)
			if err != nil {
				corpusErr = err
				return
			}
			scene := w.Scene()
			det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
			rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
			vd, err := vaq.IngestVideo(det, rec, w.Truth.Meta, w.Truth.ObjectLabels(), w.Truth.ActionLabels(), vaq.IngestConfig{})
			if err != nil {
				corpusErr = err
				return
			}
			corpusVids[s.Name] = vd
		}
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusVids, corpusQ
}

func repoWith(t testing.TB, vids map[string]*vaq.VideoData, names []string) *vaq.Repository {
	t.Helper()
	repo, err := vaq.OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if err := repo.Add(n, vids[n]); err != nil {
			t.Fatal(err)
		}
	}
	return repo
}

func topKReq(q vaq.Query, k int) api.TopKRequest {
	req := api.TopKRequest{Action: string(q.Action), K: k}
	for _, o := range q.Objects {
		req.Objects = append(req.Objects, string(o))
	}
	return req
}

// ---- cluster harness ----

type cluster struct {
	co     *shard.Coordinator
	coTS   *httptest.Server
	shards []*httptest.Server // index-aligned with shard names s0..s{n-1}
	union  *httptest.Server
	tracer *trace.Tracer
}

// startShardServer runs one vaqd-equivalent over repo with cleanup.
func startShardServer(t *testing.T, repo *vaq.Repository) *httptest.Server {
	t.Helper()
	srv := server.New(server.Config{Repo: repo})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		for _, info := range srv.Registry().List() {
			srv.Registry().Delete(info.ID)
		}
		_ = srv.Shutdown(t.Context())
	})
	return ts
}

// startCluster partitions the corpus across nShards real server.Server
// instances by the coordinator's own ring and fronts them with a
// coordinator, plus a single-process union server over the full corpus
// as the reference.
func startCluster(t *testing.T, nShards int, mod func(*shard.Config)) *cluster {
	t.Helper()
	vids, _ := corpus(t)
	all := make([]string, 0, len(vids))
	for n := range vids {
		all = append(all, n)
	}
	sort.Strings(all)

	shardNames := make([]string, nShards)
	for i := range shardNames {
		shardNames[i] = fmt.Sprintf("s%d", i)
	}
	ring, err := shard.NewRing(shardNames, 0)
	if err != nil {
		t.Fatal(err)
	}
	parts := ring.Partition(all)

	c := &cluster{tracer: trace.New()}
	backends := make([]shard.Backend, nShards)
	for i, name := range shardNames {
		ts := startShardServer(t, repoWith(t, vids, parts[name]))
		c.shards = append(c.shards, ts)
		backends[i] = shard.Backend{Name: name, Addr: ts.URL}
	}
	c.union = startShardServer(t, repoWith(t, vids, all))

	cfg := shard.Config{Backends: backends, Tracer: c.tracer}
	if mod != nil {
		mod(&cfg)
	}
	co, err := shard.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.co = co
	c.coTS = httptest.NewServer(co.Handler())
	t.Cleanup(c.coTS.Close)
	return c
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// resultsJSON canonicalizes a ranking for byte comparison (runtimes
// vary run to run; the Results array must not).
func resultsJSON(t *testing.T, rs []api.TopKEntry) string {
	t.Helper()
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// ---- scatter ----

// TestScatterMatchesUnion: the merged scatter ranking is byte-identical
// to the same query against a single process holding every video, for
// several k.
func TestScatterMatchesUnion(t *testing.T) {
	c := startCluster(t, 3, nil)
	_, q := corpus(t)
	for _, k := range []int{1, 4, 9} {
		var got, want api.TopKResponse
		if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", topKReq(q, k), &got); code != http.StatusOK {
			t.Fatalf("k=%d: coordinator status %d", k, code)
		}
		if code := doJSON(t, http.MethodPost, c.union.URL+"/v1/topk", topKReq(q, k), &want); code != http.StatusOK {
			t.Fatalf("k=%d: union status %d", k, code)
		}
		if len(want.Results) == 0 {
			t.Fatalf("k=%d: union returned no results", k)
		}
		if g, w := resultsJSON(t, got.Results), resultsJSON(t, want.Results); g != w {
			t.Fatalf("k=%d: scatter ranking diverged\n got %s\nwant %s", k, g, w)
		}
		if got.Candidates != want.Candidates {
			t.Errorf("k=%d: scatter candidates %d, union %d", k, got.Candidates, want.Candidates)
		}
		if got.Incomplete {
			t.Errorf("k=%d: scatter incomplete with all shards healthy", k)
		}
	}
	if n := c.tracer.Counter("shard.scatters").Value(); n != 3 {
		t.Errorf("shard.scatters = %d, want 3", n)
	}
}

// TestScatterBroadcastDeterminism is the metamorphic check: the bound
// broadcast is a pure work-saving channel, so aggressive broadcasting
// and no broadcasting must produce byte-identical rankings, repeatedly.
func TestScatterBroadcastDeterminism(t *testing.T) {
	quiet := startCluster(t, 3, nil)
	chatty := startCluster(t, 3, func(cfg *shard.Config) {
		cfg.BroadcastEvery = time.Millisecond
	})
	_, q := corpus(t)
	var ref string
	for i := 0; i < 3; i++ {
		for name, c := range map[string]*cluster{"no-broadcast": quiet, "broadcast-1ms": chatty} {
			var resp api.TopKResponse
			if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", topKReq(q, 5), &resp); code != http.StatusOK {
				t.Fatalf("%s run %d: status %d", name, i, code)
			}
			got := resultsJSON(t, resp.Results)
			if ref == "" {
				ref = got
			} else if got != ref {
				t.Fatalf("%s run %d: ranking diverged\n got %s\nwant %s", name, i, got, ref)
			}
		}
	}
}

// TestScatterShardDownPartial: with a shard dead, partial=false fails
// loudly and partial=true returns the survivors' merged ranking flagged
// Incomplete — deterministically.
func TestScatterShardDownPartial(t *testing.T) {
	c := startCluster(t, 3, nil)
	_, q := corpus(t)
	c.shards[1].CloseClientConnections()
	c.shards[1].Close()

	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", topKReq(q, 5), &errResp); code != http.StatusBadGateway {
		t.Fatalf("strict scatter with dead shard: status %d, want 502", code)
	}
	if errResp.Error.Code != "shard_failed" {
		t.Fatalf("strict scatter error %+v, want shard_failed", errResp.Error)
	}

	req := topKReq(q, 5)
	req.Partial = true
	var first api.TopKResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", req, &first); code != http.StatusOK {
		t.Fatalf("partial scatter: status %d", code)
	}
	if !first.Incomplete {
		t.Fatal("partial scatter with dead shard: incomplete not set")
	}
	if len(first.Results) == 0 {
		t.Fatal("partial scatter: no survivor results")
	}
	var second api.TopKResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", req, &second); code != http.StatusOK {
		t.Fatalf("partial scatter (repeat): status %d", code)
	}
	if a, b := resultsJSON(t, first.Results), resultsJSON(t, second.Results); a != b {
		t.Fatalf("partial results not deterministic:\n%s\n%s", a, b)
	}
	if n := c.tracer.Counter("shard.partials").Value(); n < 2 {
		t.Errorf("shard.partials = %d, want >= 2", n)
	}
}

// TestScatterEmptyShard: a shard owning no videos answers unknown_label
// and merges as a no-contribution; only when every shard does is the
// query itself a 400.
func TestScatterEmptyShard(t *testing.T) {
	vids, q := corpus(t)
	all := make([]string, 0, len(vids))
	for n := range vids {
		all = append(all, n)
	}
	sort.Strings(all)

	full := startShardServer(t, repoWith(t, vids, all))
	empty := startShardServer(t, repoWith(t, vids, nil))
	union := startShardServer(t, repoWith(t, vids, all))

	co, err := shard.New(shard.Config{Backends: []shard.Backend{
		{Name: "s0", Addr: full.URL},
		{Name: "s1", Addr: empty.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	coTS := httptest.NewServer(co.Handler())
	defer coTS.Close()

	var got, want api.TopKResponse
	if code := doJSON(t, http.MethodPost, coTS.URL+"/v1/topk", topKReq(q, 5), &got); code != http.StatusOK {
		t.Fatalf("scatter with empty shard: status %d", code)
	}
	if got.Incomplete {
		t.Error("empty shard must not mark the merge incomplete")
	}
	if code := doJSON(t, http.MethodPost, union.URL+"/v1/topk", topKReq(q, 5), &want); code != http.StatusOK {
		t.Fatalf("union: status %d", code)
	}
	if g, w := resultsJSON(t, got.Results), resultsJSON(t, want.Results); g != w {
		t.Fatalf("ranking with empty shard diverged\n got %s\nwant %s", g, w)
	}

	// Both shards empty: the label genuinely is nowhere.
	co2, err := shard.New(shard.Config{Backends: []shard.Backend{
		{Name: "s0", Addr: empty.URL},
		{Name: "s1", Addr: empty.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	co2TS := httptest.NewServer(co2.Handler())
	defer co2TS.Close()
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, co2TS.URL+"/v1/topk", topKReq(q, 5), &errResp); code != http.StatusBadRequest {
		t.Fatalf("all-empty scatter: status %d, want 400", code)
	}
	if errResp.Error.Code != "unknown_label" {
		t.Fatalf("all-empty scatter error %+v, want unknown_label", errResp.Error)
	}
}

// TestScatterRejectsClientBoundQuery: the exchange id is coordinator
// minted; clients must not join someone else's exchange.
func TestScatterRejectsClientBoundQuery(t *testing.T) {
	c := startCluster(t, 2, nil)
	_, q := corpus(t)
	req := topKReq(q, 3)
	req.BoundQuery = "hijack"
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", req, &errResp); code != http.StatusBadRequest {
		t.Fatalf("bound_query from client: status %d, want 400", code)
	}
}

// TestScatterInvalidQuery: a malformed VQL statement dies at the
// coordinator without burning a scatter on every shard.
func TestScatterInvalidQuery(t *testing.T) {
	c := startCluster(t, 2, nil)
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk",
		api.TopKRequest{Query: "SELECT nonsense FROM"}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("invalid query: status %d, want 400", code)
	}
	if errResp.Error.Code != "invalid_query" {
		t.Fatalf("invalid query error %+v", errResp.Error)
	}
}

// TestVideoRoutedTopK: a video-pinned query proxies to the ring owner
// and matches the single-process answer for that video.
func TestVideoRoutedTopK(t *testing.T) {
	c := startCluster(t, 3, nil)
	_, q := corpus(t)
	req := topKReq(q, 3)
	req.Video = "v02"
	var got, want api.TopKResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", req, &got); code != http.StatusOK {
		t.Fatalf("routed topk: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, c.union.URL+"/v1/topk", req, &want); code != http.StatusOK {
		t.Fatalf("union topk: status %d", code)
	}
	if g, w := resultsJSON(t, got.Results), resultsJSON(t, want.Results); g != w {
		t.Fatalf("routed ranking diverged\n got %s\nwant %s", g, w)
	}
	if n := c.tracer.Counter("shard.routed").Value(); n != 1 {
		t.Errorf("shard.routed = %d, want 1", n)
	}
}

// ---- explain ----

// TestExplainReconciliation: the coordinator's merged TopK section is
// the exact field-wise sum of its per-shard attribution rows, and each
// row equals what that shard's own /explainz recorded for the leg —
// the reconciliation invariant stretched across process boundaries.
func TestExplainReconciliation(t *testing.T) {
	c := startCluster(t, 3, nil)
	_, q := corpus(t)
	req := topKReq(q, 5)
	req.Explain = true
	var resp api.TopKResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", req, &resp); code != http.StatusOK {
		t.Fatalf("scatter: status %d", code)
	}
	p := resp.Explain
	if p == nil || p.TopK == nil {
		t.Fatalf("no coordinator explain profile: %+v", p)
	}
	if p.Kind != "coordinator" {
		t.Errorf("profile kind %q", p.Kind)
	}
	if len(p.Shards) != 3 {
		t.Fatalf("%d shard rows, want 3", len(p.Shards))
	}

	var sum explain.ShardProfile
	for _, sp := range p.Shards {
		if sp.Failed {
			t.Fatalf("healthy cluster produced failed leg: %+v", sp)
		}
		sum.Candidates += sp.Candidates
		sum.Iterations += sp.Iterations
		sum.RandomAccesses += sp.RandomAccesses
		sum.SortedAccesses += sp.SortedAccesses
		sum.SeqsPruned += sp.SeqsPruned
		sum.ClipsPruned += sp.ClipsPruned
	}
	tk := p.TopK
	if tk.Candidates != sum.Candidates || tk.Iterations != sum.Iterations ||
		tk.RandomAccesses != sum.RandomAccesses || tk.SortedAccesses != sum.SortedAccesses ||
		tk.SeqsPruned != sum.SeqsPruned || tk.ClipsPruned != sum.ClipsPruned {
		t.Fatalf("merged TopK %+v != sum of shard rows %+v", tk, sum)
	}
	if tk.Candidates != resp.Candidates {
		t.Errorf("profile candidates %d != response candidates %d", tk.Candidates, resp.Candidates)
	}

	// Cross-process: each attribution row must equal the shard's own
	// engine counters, as recorded in its /explainz ring.
	for i, sp := range p.Shards {
		var ez api.ExplainzResponse
		if code := doJSON(t, http.MethodGet, c.shards[i].URL+"/explainz", nil, &ez); code != http.StatusOK {
			t.Fatalf("shard %d explainz: status %d", i, code)
		}
		if len(ez.Profiles) == 0 || ez.Profiles[0].TopK == nil {
			t.Fatalf("shard %d recorded no topk profile", i)
		}
		stk := ez.Profiles[0].TopK
		if sp.Candidates != stk.Candidates || sp.Iterations != stk.Iterations ||
			sp.RandomAccesses != stk.RandomAccesses || sp.SortedAccesses != stk.SortedAccesses ||
			sp.SeqsPruned != stk.SeqsPruned || sp.ClipsPruned != stk.ClipsPruned {
			t.Fatalf("shard %s row %+v != shard's own profile %+v", sp.Shard, sp, stk)
		}
	}

	// The profile also landed in the coordinator's own ring.
	var ez api.ExplainzResponse
	if code := doJSON(t, http.MethodGet, c.coTS.URL+"/explainz", nil, &ez); code != http.StatusOK {
		t.Fatalf("coordinator explainz: status %d", code)
	}
	if ez.Total < 1 || len(ez.Profiles) == 0 {
		t.Fatalf("coordinator ring empty: %+v", ez)
	}
}

// ---- resilience ----

// deadBackend reserves a TCP port and closes it, yielding an address
// that refuses connections.
func deadBackend(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBreakerSkipsDeadShard: after the breaker opens, scatters skip the
// dead shard without paying a connection attempt, and /metricsz and
// /healthz report the state.
func TestBreakerSkipsDeadShard(t *testing.T) {
	vids, q := corpus(t)
	all := make([]string, 0, len(vids))
	for n := range vids {
		all = append(all, n)
	}
	sort.Strings(all)
	live := startShardServer(t, repoWith(t, vids, all))

	tr := trace.New()
	co, err := shard.New(shard.Config{
		Backends: []shard.Backend{
			{Name: "s0", Addr: live.URL},
			{Name: "s1", Addr: deadBackend(t)},
		},
		BreakerFailures: 1,
		BreakerCooldown: time.Hour,
		Tracer:          tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	coTS := httptest.NewServer(co.Handler())
	defer coTS.Close()

	req := topKReq(q, 3)
	req.Partial = true
	for i := 0; i < 2; i++ {
		var resp api.TopKResponse
		if code := doJSON(t, http.MethodPost, coTS.URL+"/v1/topk", req, &resp); code != http.StatusOK {
			t.Fatalf("scatter %d: status %d", i, code)
		}
		if !resp.Incomplete {
			t.Fatalf("scatter %d: not incomplete", i)
		}
	}
	if n := tr.Counter("shard.breaker_skips").Value(); n < 1 {
		t.Errorf("shard.breaker_skips = %d, want >= 1", n)
	}

	var mz api.CoordMetricszResponse
	if code := doJSON(t, http.MethodGet, coTS.URL+"/metricsz", nil, &mz); code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	var dead *api.CoordShardMetrics
	for i := range mz.Shards {
		if mz.Shards[i].Name == "s1" {
			dead = &mz.Shards[i]
		}
	}
	if dead == nil || dead.Breaker != "open" || dead.BreakerOpens < 1 {
		t.Fatalf("dead shard metrics %+v, want open breaker", dead)
	}

	var hz api.CoordHealthzResponse
	if code := doJSON(t, http.MethodGet, coTS.URL+"/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if hz.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded (%+v)", hz.Status, hz)
	}
}

// TestHedgedScatter: a shard answering slower than the hedge delay gets
// a replica launched against it (first response wins, either way).
func TestHedgedScatter(t *testing.T) {
	vids, q := corpus(t)
	all := make([]string, 0, len(vids))
	for n := range vids {
		all = append(all, n)
	}
	sort.Strings(all)

	srv := server.New(server.Config{Repo: repoWith(t, vids, all)})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(120 * time.Millisecond)
		srv.Handler().ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		slow.Close()
		_ = srv.Shutdown(t.Context())
	})

	tr := trace.New()
	co, err := shard.New(shard.Config{
		Backends:   []shard.Backend{{Name: "s0", Addr: slow.URL}},
		HedgeDelay: 20 * time.Millisecond,
		Tracer:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	coTS := httptest.NewServer(co.Handler())
	defer coTS.Close()

	var resp api.TopKResponse
	if code := doJSON(t, http.MethodPost, coTS.URL+"/v1/topk", topKReq(q, 3), &resp); code != http.StatusOK {
		t.Fatalf("scatter: status %d", code)
	}
	if len(resp.Results) == 0 {
		t.Fatal("no results through slow shard")
	}
	if n := tr.Counter("shard.hedges").Value(); n < 1 {
		t.Errorf("shard.hedges = %d, want >= 1", n)
	}
}

// TestHealthzUnavailable: a coordinator whose every shard is dead
// reports unavailable with a 503.
func TestHealthzUnavailable(t *testing.T) {
	co, err := shard.New(shard.Config{
		Backends:     []shard.Backend{{Name: "s0", Addr: deadBackend(t)}},
		ProbeTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	coTS := httptest.NewServer(co.Handler())
	defer coTS.Close()
	var hz api.CoordHealthzResponse
	if code := doJSON(t, http.MethodGet, coTS.URL+"/healthz", nil, &hz); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503", code)
	}
	if hz.Status != "unavailable" {
		t.Fatalf("healthz %+v", hz)
	}
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, coTS.URL+"/v1/topk",
		api.TopKRequest{Action: "x"}, &errResp); code != http.StatusBadGateway {
		t.Fatalf("scatter against dead fleet: status %d, want 502", code)
	}
	if errResp.Error.Code != "shards_unavailable" {
		t.Fatalf("error %+v", errResp.Error)
	}
}

// ---- sessions ----

// TestSessionProxy: sessions route to the workload's ring owner under a
// namespaced id; create, status, results, list and delete all work
// through the coordinator.
func TestSessionProxy(t *testing.T) {
	c := startCluster(t, 3, nil)

	var created api.SessionInfo
	code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/sessions",
		api.CreateSessionRequest{Workload: "q2", Scale: 0.02}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create: status %d (%+v)", code, created)
	}
	if created.ID == "" || !bytes.ContainsRune([]byte(created.ID), '~') {
		t.Fatalf("session id %q not namespaced", created.ID)
	}

	var info api.SessionInfo
	if code := doJSON(t, http.MethodGet, c.coTS.URL+"/v1/sessions/"+created.ID, nil, &info); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if info.ID != created.ID {
		t.Fatalf("status id %q, want %q", info.ID, created.ID)
	}

	deadline := time.Now().Add(30 * time.Second)
	since := -1
	var res api.ResultsResponse
	for {
		url := fmt.Sprintf("%s/v1/sessions/%s/results?wait=2s", c.coTS.URL, created.ID)
		if since >= 0 {
			url += fmt.Sprintf("&since=%d", since)
		}
		if code := doJSON(t, http.MethodGet, url, nil, &res); code != http.StatusOK {
			t.Fatalf("results: status %d", code)
		}
		if res.State != "running" {
			break
		}
		since = res.ClipsProcessed
		if time.Now().After(deadline) {
			t.Fatalf("session still running: %+v", res)
		}
	}
	if res.State != "done" {
		t.Fatalf("session ended %q, want done", res.State)
	}

	var list api.SessionList
	if code := doJSON(t, http.MethodGet, c.coTS.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	found := false
	for _, s := range list.Sessions {
		if s.ID == created.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("list %+v missing %q", list.Sessions, created.ID)
	}

	var deleted api.SessionInfo
	if code := doJSON(t, http.MethodDelete, c.coTS.URL+"/v1/sessions/"+created.ID, nil, &deleted); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodGet, c.coTS.URL+"/v1/sessions/"+created.ID, nil, &errResp); code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", code)
	}
}

func TestSessionBadIDs(t *testing.T) {
	c := startCluster(t, 2, nil)
	for _, id := range []string{"nope", "9~s1", "x~s1"} {
		var errResp api.ErrorResponse
		if code := doJSON(t, http.MethodGet, c.coTS.URL+"/v1/sessions/"+id, nil, &errResp); code != http.StatusNotFound {
			t.Fatalf("id %q: status %d, want 404", id, code)
		}
	}
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/sessions",
		api.CreateSessionRequest{}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("create without workload: status %d, want 400", code)
	}
}

// ---- bound endpoint plumbing ----

// TestShardBoundEndpoint: broadcast rounds against an id with no
// in-flight query answer found=false (the query finished or never
// reached this shard) and never fail the round.
func TestShardBoundEndpoint(t *testing.T) {
	c := startCluster(t, 2, nil)
	b := 1.5
	var resp api.BoundExchangeResponse
	code := doJSON(t, http.MethodPost, c.shards[0].URL+"/v1/shard/bound",
		api.BoundExchangeRequest{Query: "gone", Bound: &b}, &resp)
	if code != http.StatusOK {
		t.Fatalf("bound exchange: status %d", code)
	}
	if resp.Found {
		t.Fatalf("exchange against unknown id reported found: %+v", resp)
	}
	var errResp api.ErrorResponse
	if code := doJSON(t, http.MethodPost, c.shards[0].URL+"/v1/shard/bound",
		api.BoundExchangeRequest{}, &errResp); code != http.StatusBadRequest {
		t.Fatalf("empty id: status %d, want 400", code)
	}
}

// TestCoordMetricsz: traffic shows up in the coordinator totals.
func TestCoordMetricsz(t *testing.T) {
	c := startCluster(t, 2, nil)
	_, q := corpus(t)
	var resp api.TopKResponse
	if code := doJSON(t, http.MethodPost, c.coTS.URL+"/v1/topk", topKReq(q, 2), &resp); code != http.StatusOK {
		t.Fatalf("scatter: status %d", code)
	}
	var mz api.CoordMetricszResponse
	if code := doJSON(t, http.MethodGet, c.coTS.URL+"/metricsz", nil, &mz); code != http.StatusOK {
		t.Fatalf("metricsz: status %d", code)
	}
	if mz.Scatters != 1 {
		t.Errorf("scatters = %d, want 1", mz.Scatters)
	}
	calls := int64(0)
	for _, s := range mz.Shards {
		calls += s.Calls
	}
	if calls < 2 {
		t.Errorf("shard calls = %d, want >= 2", calls)
	}
}
