package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"vaq/internal/resilience"
	"vaq/internal/trace"
)

// Backend is one shard process: the stable consistent-hash identity
// plus the address currently serving it. Decoupling the two means a
// shard can restart on a new port (or move hosts) without remapping a
// single video.
type Backend struct {
	Name string
	Addr string
}

// ParseBackends parses a -shards flag value: comma-separated entries,
// each "name=host:port" or a bare "host:port" (the address then doubles
// as the consistent-hash name — fine for fixed addresses, wrong for
// ephemeral ports).
func ParseBackends(spec string) ([]Backend, error) {
	var out []Backend
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		b := Backend{Name: part, Addr: part}
		if name, addr, ok := strings.Cut(part, "="); ok {
			b.Name, b.Addr = strings.TrimSpace(name), strings.TrimSpace(addr)
		}
		if b.Name == "" || b.Addr == "" {
			return nil, fmt.Errorf("shard: bad backend %q (want name=host:port or host:port)", part)
		}
		out = append(out, b)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("shard: no backends in %q", spec)
	}
	return out, nil
}

// maxResponseBytes caps how much of a shard response the coordinator
// will buffer (a top-k body is tiny; explain profiles can be larger).
const maxResponseBytes = 64 << 20

// errBreakerOpen marks a call the circuit breaker rejected without
// touching the network.
var errBreakerOpen = errors.New("shard: circuit breaker open")

// client is the coordinator's view of one shard process: an HTTP
// client plus the resilience state guarding it — a circuit breaker (a
// dead shard costs one cooldown, not a deadline per query) and a
// fixed-delay hedge for idempotent reads (tail latency of the slowest
// shard caps the whole scatter, so hedging the stragglers is where the
// coordinator buys its p99).
type client struct {
	backend Backend
	base    string // http://host:port
	hc      *http.Client
	breaker *resilience.Breaker
	hedge   time.Duration

	// Per-shard totals for /metricsz; the tracer counters aggregate the
	// same events fleet-wide.
	calls    atomic.Int64
	failures atomic.Int64
	hedges   atomic.Int64

	tcHedges *trace.Counter // shard.hedges (nil-safe)
}

func newClient(b Backend, hc *http.Client, breaker *resilience.Breaker, hedge time.Duration, tcHedges *trace.Counter) *client {
	base := b.Addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &client{backend: b, base: strings.TrimRight(base, "/"), hc: hc, breaker: breaker, hedge: hedge, tcHedges: tcHedges}
}

// callResult is one HTTP exchange: status and raw body on any
// response (2xx or not), err on transport failure.
type callResult struct {
	status int
	body   []byte
	hedged bool // the winning response came from a hedge replica
	err    error
}

// attempt runs a single HTTP exchange against the shard.
func (c *client) attempt(ctx context.Context, method, path string, body []byte) callResult {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return callResult{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return callResult{err: err}
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return callResult{err: err}
	}
	return callResult{status: resp.StatusCode, body: b}
}

// doHedged runs the exchange with tail-latency hedging: if the primary
// has not answered within c.hedge, one replica is launched and the
// first completed response wins (the loser's context is cancelled). A
// primary that fails fast promotes the hedge to an immediate retry.
// Only for idempotent calls — a top-k query is a pure read, so replicas
// compute identical answers.
func (c *client) doHedged(ctx context.Context, method, path string, body []byte) callResult {
	if c.hedge <= 0 {
		return c.attempt(ctx, method, path, body)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan callResult, 2)
	run := func(hedged bool) {
		go func() {
			r := c.attempt(hctx, method, path, body)
			r.hedged = hedged
			ch <- r
		}()
	}
	run(false)
	timer := time.NewTimer(c.hedge)
	defer timer.Stop()
	outstanding, launchedHedge := 1, false
	var firstErr callResult
	hasErr := false
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				return r
			}
			if !hasErr {
				firstErr, hasErr = r, true
			}
			if !launchedHedge {
				timer.Stop()
				c.hedges.Add(1)
				c.tcHedges.Add(1)
				run(true)
				launchedHedge = true
				outstanding++
			} else if outstanding == 0 {
				return firstErr
			}
		case <-timer.C:
			if !launchedHedge {
				c.hedges.Add(1)
				c.tcHedges.Add(1)
				run(true)
				launchedHedge = true
				outstanding++
			}
		}
	}
}

// call runs one breaker-guarded logical call. hedged permits a
// tail-latency replica (idempotent reads only). For breaker purposes a
// 4xx is a success — the shard is healthy and rejected the request —
// while transport errors and 5xx (including shed 503s) are failures.
func (c *client) call(ctx context.Context, method, path string, body []byte, hedged bool) (callResult, error) {
	if !c.breaker.Allow() {
		return callResult{}, errBreakerOpen
	}
	c.calls.Add(1)
	var r callResult
	if hedged {
		r = c.doHedged(ctx, method, path, body)
	} else {
		r = c.attempt(ctx, method, path, body)
	}
	if r.err != nil || r.status >= 500 {
		c.failures.Add(1)
		c.breaker.Failure()
	} else {
		c.breaker.Success()
	}
	return r, r.err
}
