// Package shard is the multi-process serving tier: it partitions a
// video repository across N vaqd shard processes by consistent hashing
// on video id, and fronts them with a thin scatter-gather coordinator
// that fans /v1/topk out to every shard, merges the rankings
// deterministically, and periodically broadcasts the fleet's best
// B_lo^K between shards mid-query so each shard's iterator prunes
// against remote progress (the over-the-wire generalization of
// rvaq.GlobalBound). Sessions and video-pinned queries route to the
// owning shard. The coordinator reuses the resilience vocabulary:
// hedged shard requests, a per-shard circuit breaker, and partial
// (Incomplete) merged results when a shard is down or shedding. See
// docs/SHARDING.md.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the number of ring points per shard. More points
// smooth the partition (expected imbalance shrinks roughly with
// 1/sqrt(replicas)) at the cost of a larger, still tiny, ring.
const DefaultReplicas = 128

// Ring is a consistent-hash partition of the video-id space across a
// fixed set of named shards. Hashing is FNV-1a over the video id —
// deterministic across processes and releases, so the coordinator and
// any out-of-band partitioner (e.g. the ingest pipeline placing new
// videos) agree on ownership forever; a pinned regression test guards
// the mapping. Shards are identified by stable names, not addresses: a
// shard can move hosts without remapping a single video.
//
// Changing the shard set remaps only the videos whose owning arc is
// claimed or released — about 1/N of them — which is the property that
// makes resharding an incremental migration instead of a full
// reshuffle.
type Ring struct {
	names  []string
	points []ringPoint // sorted by (hash, shard) — shard breaks hash ties
}

type ringPoint struct {
	hash  uint64
	shard int // index into names
}

// NewRing builds a ring over the given shard names with replicas
// points each (<= 0 picks DefaultReplicas). Names must be non-empty
// and unique.
func NewRing(names []string, replicas int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one shard")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := map[string]bool{}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*replicas),
	}
	for i, name := range names {
		if name == "" {
			return nil, fmt.Errorf("shard: empty shard name at position %d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("shard: duplicate shard name %q", name)
		}
		seen[name] = true
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", name, v)), shard: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// A full 64-bit collision between two shards' points is
		// astronomically unlikely; break it by name so the ring is a
		// pure function of the shard set either way.
		return r.names[r.points[a].shard] < r.names[r.points[b].shard]
	})
	return r, nil
}

// hash64 is FNV-1a finished with a splitmix64 avalanche — stable and
// dependency-free. Raw FNV-1a of near-identical short keys (vnode
// names differ only in their suffix) clusters badly in the high bits
// that the ring's ordering depends on; the finalizer spreads every
// input bit across the word, bringing per-shard ownership back to the
// expected ~1/N ± 1/sqrt(replicas).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// OwnerIndex returns the index (into the constructor's name order) of
// the shard owning the video id: the first ring point at or after the
// video's hash, wrapping past the top.
func (r *Ring) OwnerIndex(video string) int {
	h := hash64(video)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Owner returns the name of the shard owning the video id.
func (r *Ring) Owner(video string) string { return r.names[r.OwnerIndex(video)] }

// Shards returns the shard names in constructor order.
func (r *Ring) Shards() []string { return append([]string(nil), r.names...) }

// Partition groups video ids by owning shard name (missing shards map
// to absent keys). Convenience for partitioned ingest and tests.
func (r *Ring) Partition(videos []string) map[string][]string {
	out := map[string][]string{}
	for _, v := range videos {
		name := r.Owner(v)
		out[name] = append(out[name], v)
	}
	return out
}
