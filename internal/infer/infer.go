// Package infer is the shared-inference layer between the query engines
// and the detection backends: the seam where many concurrent sessions
// and top-k queries over the same hot videos stop re-invoking the same
// model on the same (frame/shot, label) units. The paper attributes
// >98% of online runtime to model inference, so at many-sessions scale
// this layer — not the matcher — is where serving capacity is won.
//
// Three composable layers, stacked from the engines down:
//
//  1. Singleflight dedup (ObjectFlight / ActionFlight). Concurrent
//     invocations for the same (backend, unit, label-set) key coalesce
//     into one in-flight call whose result fans out to every waiter.
//     Each waiter observes its own ctx: a cancelled waiter leaves
//     immediately without killing the shared call, which is cancelled
//     only when its last waiter is gone. The flight sits ABOVE the
//     resilience layer so a hedged invocation's replicas share one
//     flight entry — dedup must not swallow the hedge race itself.
//  2. Same-profile micro-batching (Shared.Object / Shared.Action with
//     BatchWindow > 0). A bounded-delay accumulator groups same-label-set
//     unit invocations arriving within BatchWindow (or until BatchMax)
//     into one vectorized backend call, amortising per-invocation
//     dispatch cost. Batch results are byte-identical to per-unit calls.
//  3. Bounded memoized score cache (Shared.Object / Shared.Action with
//     CacheCapacity > 0). Admission is a TinyLFU-style doorkeeper —
//     under eviction pressure a key must be seen twice before it may
//     displace a resident entry — and eviction is second-chance CLOCK.
//     The cache sits BELOW the fault injector (package fault): every
//     engine-visible invocation still passes through fault's
//     deterministic draws, and corrupted results are never admitted, so
//     chaos runs are byte-identical with the cache on or off.
//
// See docs/INFERENCE.md for the stacking contract and tuning guidance.
package infer

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/trace"
)

// Config sizes one Shared inference domain. The zero value disables
// every layer except dedup (flights always coalesce).
type Config struct {
	// CacheCapacity bounds the memo cache in entries (one entry per
	// (backend, unit, label-set) key); <= 0 disables the cache.
	CacheCapacity int
	// BatchWindow is how long the accumulator holds the first invocation
	// of a batch open waiting for companions; <= 0 disables batching.
	BatchWindow time.Duration
	// BatchMax caps units per vectorized call (default 16).
	BatchMax int
	// Tracer receives the infer.* counters and stage sketches; nil
	// disables instrumentation.
	Tracer *trace.Tracer
}

// DefaultBatchMax caps batch size when Config.BatchMax is unset.
const DefaultBatchMax = 16

// Stats is a point-in-time snapshot of one Shared domain's counters.
type Stats struct {
	// Cache outcomes, counted at the cache layer (below fault).
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	// Admitted/Evicted/DoorRejected describe the admission and eviction
	// flow: a doorkeeper-rejected key was seen for the first time under
	// eviction pressure and not admitted.
	Admitted     int64 `json:"admitted"`
	Evicted      int64 `json:"evicted"`
	DoorRejected int64 `json:"door_rejected"`
	// Flight outcomes: Leaders ran the shared call, Coalesced joined one
	// already in flight.
	Leaders   int64 `json:"leaders"`
	Coalesced int64 `json:"coalesced"`
	// Batching: Batches vectorized calls covering BatchedUnits units.
	Batches      int64 `json:"batches"`
	BatchedUnits int64 `json:"batched_units"`
}

// Add accumulates other into s (for aggregating across domains).
func (s *Stats) Add(o Stats) {
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.Admitted += o.Admitted
	s.Evicted += o.Evicted
	s.DoorRejected += o.DoorRejected
	s.Leaders += o.Leaders
	s.Coalesced += o.Coalesced
	s.Batches += o.Batches
	s.BatchedUnits += o.BatchedUnits
}

// Shared is one shared-inference domain: one cache, one flight group
// and one batch accumulator per kind, shared by every backend wrapped
// through it. All backends of the same Name() wrapped into one Shared
// must be interchangeable (same scene, same profile) — the server's hub
// guarantees this by keying domains on (workload, scale, model).
type Shared struct {
	cfg   Config
	cache *cache

	objGroup group[objResult]
	actGroup group[actResult]
	leaders  atomic.Int64
	coalesce atomic.Int64

	batches    atomic.Int64
	batchUnits atomic.Int64

	// Pre-resolved trace handles (nil-safe when cfg.Tracer is nil).
	cHits, cMisses, cAdmit, cEvict, cDoor *trace.Counter
	cLeaders, cCoalesced                  *trace.Counter
	cBatches, cBatchUnits                 *trace.Counter
	sBatchSize, sBatchFlush               *trace.Stage
}

// Validate rejects unusable configurations. Zero values stay legal
// ("default" for BatchMax, "disabled" for the window and cache);
// negative values are configuration bugs — a negative BatchMax would
// silently disable batching while still arming a window timer per
// invocation — and are reported rather than clamped.
func (cfg Config) Validate() error {
	if cfg.BatchMax < 0 {
		return fmt.Errorf("infer: BatchMax must be positive (or 0 for the default %d), got %d", DefaultBatchMax, cfg.BatchMax)
	}
	if cfg.BatchWindow < 0 {
		return fmt.Errorf("infer: BatchWindow must be positive (or 0 to disable batching), got %v", cfg.BatchWindow)
	}
	return nil
}

// New builds a Shared domain from cfg.
func New(cfg Config) (*Shared, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BatchMax == 0 {
		cfg.BatchMax = DefaultBatchMax
	}
	sh := &Shared{cfg: cfg}
	if cfg.CacheCapacity > 0 {
		sh.cache = newCache(cfg.CacheCapacity)
	}
	tr := cfg.Tracer
	sh.cHits = tr.Counter("infer.cache_hits")
	sh.cMisses = tr.Counter("infer.cache_misses")
	sh.cAdmit = tr.Counter("infer.cache_admitted")
	sh.cEvict = tr.Counter("infer.cache_evicted")
	sh.cDoor = tr.Counter("infer.cache_door_rejected")
	sh.cLeaders = tr.Counter("infer.flight_leaders")
	sh.cCoalesced = tr.Counter("infer.coalesced")
	sh.cBatches = tr.Counter("infer.batches")
	sh.cBatchUnits = tr.Counter("infer.batch_units")
	sh.sBatchSize = tr.Stage("infer.batch_size")
	sh.sBatchFlush = tr.Stage("infer.batch_flush")
	if sh.cache != nil {
		sh.cache.cAdmit, sh.cache.cEvict, sh.cache.cDoor = sh.cAdmit, sh.cEvict, sh.cDoor
	}
	return sh, nil
}

// MustNew is New for configurations already validated upstream (e.g.
// the serving daemon's flag parsing); it panics on error.
func MustNew(cfg Config) *Shared {
	sh, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return sh
}

// Config returns the domain's configuration (with defaults applied).
func (sh *Shared) Config() Config { return sh.cfg }

// Stats snapshots the domain's counters.
func (sh *Shared) Stats() Stats {
	st := Stats{
		Leaders:      sh.leaders.Load(),
		Coalesced:    sh.coalesce.Load(),
		Batches:      sh.batches.Load(),
		BatchedUnits: sh.batchUnits.Load(),
	}
	if sh.cache != nil {
		st.CacheHits = sh.cache.hits.Load()
		st.CacheMisses = sh.cache.misses.Load()
		st.Admitted = sh.cache.admitted.Load()
		st.Evicted = sh.cache.evicted.Load()
		st.DoorRejected = sh.cache.doorRejected.Load()
	}
	return st
}

// unitKey builds the canonical (kind, backend, unit, label-set) key used
// by both the cache and the flight groups. Label sets are order-
// insensitive: multi-label slices are sorted into a copy.
func unitKey(kind byte, backend string, unit int, labels []annot.Label) string {
	var b strings.Builder
	b.Grow(len(backend) + 16 + 12*len(labels))
	b.WriteByte(kind)
	b.WriteByte('|')
	b.WriteString(backend)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(unit))
	for _, l := range sortedLabels(labels) {
		b.WriteByte('|')
		b.WriteString(string(l))
	}
	return b.String()
}

// labelsKey is the label-set part alone, for batch grouping.
func labelsKey(labels []annot.Label) string {
	var b strings.Builder
	for _, l := range sortedLabels(labels) {
		b.WriteByte('|')
		b.WriteString(string(l))
	}
	return b.String()
}

func sortedLabels(labels []annot.Label) []annot.Label {
	if len(labels) < 2 || sort.SliceIsSorted(labels, func(i, j int) bool { return labels[i] < labels[j] }) {
		return labels
	}
	out := append([]annot.Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cloneDetections deep-copies a detection slice. Mandatory on every
// cache/flight boundary: Tracker.Update mutates Detection.Track in
// place, so handing the same backing array to two sessions would leak
// one session's track identifiers into another.
func cloneDetections(dets []detect.Detection) []detect.Detection {
	if dets == nil {
		return nil
	}
	return append([]detect.Detection(nil), dets...)
}

// cloneScores copies an action-score slice (same aliasing argument).
func cloneScores(ss []detect.ActionScore) []detect.ActionScore {
	if ss == nil {
		return nil
	}
	return append([]detect.ActionScore(nil), ss...)
}
