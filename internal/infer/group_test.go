package infer

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupCoalescesConcurrentCallers(t *testing.T) {
	var g group[int]
	var executions atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	type result struct {
		val       int
		coalesced bool
		err       error
	}
	results := make([]result, 5)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, co, err := g.do(context.Background(), "k", func(context.Context) int {
			executions.Add(1)
			close(started)
			<-release
			return 42
		})
		results[0] = result{v, co, err}
	}()
	<-started
	for i := 1; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, co, err := g.do(context.Background(), "k", func(context.Context) int {
				executions.Add(1)
				return -1
			})
			results[i] = result{v, co, err}
		}(i)
	}
	// Give the joiners time to register on the in-flight entry.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("shared call executed %d times, want 1", n)
	}
	coalesced := 0
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("caller %d: err %v", i, r.err)
		}
		if r.val != 42 {
			t.Fatalf("caller %d: val %d, want 42", i, r.val)
		}
		if r.coalesced {
			coalesced++
		}
	}
	if coalesced != 4 {
		t.Fatalf("coalesced callers = %d, want 4 (one leader)", coalesced)
	}
}

func TestGroupWaiterCancelLeavesSharedCallRunning(t *testing.T) {
	var g group[int]
	release := make(chan struct{})
	started := make(chan struct{})
	sharedCancelled := make(chan struct{}, 1)

	leaderDone := make(chan int, 1)
	go func() {
		v, _, _ := g.do(context.Background(), "k", func(cctx context.Context) int {
			close(started)
			<-release
			select {
			case <-cctx.Done():
				sharedCancelled <- struct{}{}
			default:
			}
			return 7
		})
		leaderDone <- v
	}()
	<-started

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(wctx, "k", func(context.Context) int { return -1 })
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	wcancel()
	if err := <-waiterDone; err != context.Canceled {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}

	close(release)
	if v := <-leaderDone; v != 7 {
		t.Fatalf("leader val = %d, want 7", v)
	}
	select {
	case <-sharedCancelled:
		t.Fatal("shared call context cancelled while the leader still waited")
	default:
	}
}

func TestGroupLastWaiterCancelsSharedCall(t *testing.T) {
	var g group[int]
	started := make(chan struct{})
	observed := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.do(ctx, "k", func(cctx context.Context) int {
			close(started)
			<-cctx.Done() // the shared call should be told to stop
			observed <- cctx.Err()
			return 0
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("sole waiter err = %v, want context.Canceled", err)
	}
	select {
	case err := <-observed:
		if err != context.Canceled {
			t.Fatalf("shared ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shared call never saw cancellation after its last waiter left")
	}
}

func TestGroupKeyReusableAfterCompletion(t *testing.T) {
	var g group[int]
	var executions atomic.Int64
	for i := 0; i < 3; i++ {
		v, co, err := g.do(context.Background(), "k", func(context.Context) int {
			executions.Add(1)
			return i
		})
		if err != nil || co || v != i {
			t.Fatalf("round %d: v=%d co=%v err=%v", i, v, co, err)
		}
	}
	if n := executions.Load(); n != 3 {
		t.Fatalf("executions = %d, want 3 (sequential calls never coalesce)", n)
	}
}
