package infer

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"vaq/internal/trace"
)

// cache is the bounded memo store: map lookup, second-chance CLOCK
// eviction over a fixed ring, and a TinyLFU-style doorkeeper gating
// admission once the ring is full. Values are opaque (detection or
// action-score slices); callers clone on both put and get.
//
// Admission only engages under eviction pressure: while the ring has
// free slots every miss is admitted directly — the doorkeeper's job is
// to stop one-hit wonders from displacing resident entries, not to tax
// a cold cache with double misses.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*centry
	ring    []*centry
	hand    int
	door    map[uint64]struct{}
	seed    maphash.Seed

	hits, misses                    atomic.Int64
	admitted, evicted, doorRejected atomic.Int64

	// Mirror trace counters (nil-safe): /varz reads these, Stats() reads
	// the atomics above; both must move together.
	cAdmit, cEvict, cDoor *trace.Counter
}

type centry struct {
	key string
	val any
	ref bool
}

func newCache(capacity int) *cache {
	return &cache{
		cap:     capacity,
		entries: make(map[string]*centry, capacity),
		ring:    make([]*centry, 0, capacity),
		door:    make(map[uint64]struct{}),
		seed:    maphash.MakeSeed(),
	}
}

// get returns the cached value for key, marking the entry recently used.
func (c *cache) get(key string) (any, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		e.ref = true
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return e.val, true
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts or refreshes key. Under eviction pressure a first-seen
// key is remembered in the doorkeeper and rejected; its second miss is
// admitted, evicting via second chance.
func (c *cache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		e.val = val
		e.ref = true
		return
	}
	if len(c.ring) >= c.cap {
		h := maphash.String(c.seed, key)
		if _, seen := c.door[h]; !seen {
			// First sighting under pressure: remember, do not admit.
			// Reset the doorkeeper when it grows well past the cache —
			// the epoch reset is what keeps "seen" approximately recent.
			if len(c.door) > 8*c.cap {
				c.door = make(map[uint64]struct{})
			}
			c.door[h] = struct{}{}
			c.doorRejected.Add(1)
			c.cDoor.Add(1)
			return
		}
		delete(c.door, h)
		c.evictOne()
		c.entries[key] = c.install(key, val)
		c.admitted.Add(1)
		c.cAdmit.Add(1)
		return
	}
	e := &centry{key: key, val: val}
	c.ring = append(c.ring, e)
	c.entries[key] = e
	c.admitted.Add(1)
	c.cAdmit.Add(1)
}

// install reuses the ring slot freed by evictOne (the hand points at
// it) for the incoming entry.
func (c *cache) install(key string, val any) *centry {
	e := &centry{key: key, val: val}
	c.ring[c.hand] = e
	c.hand = (c.hand + 1) % c.cap
	return e
}

// evictOne advances the clock hand, clearing reference bits, until it
// finds an entry without a second chance left, and removes it. The hand
// is left pointing at the freed slot.
func (c *cache) evictOne() {
	for {
		e := c.ring[c.hand]
		if e.ref {
			e.ref = false
			c.hand = (c.hand + 1) % c.cap
			continue
		}
		delete(c.entries, e.key)
		c.evicted.Add(1)
		c.cEvict.Add(1)
		return
	}
}

// Len reports resident entries (for tests).
func (c *cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
