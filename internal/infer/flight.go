package infer

import (
	"context"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/video"
)

// ObjectSource is the upstream a flight fronts: the resilient detector
// face (result plus degraded flag, no error — resilience has already
// absorbed faults). *resilience.Detector implements it.
type ObjectSource interface {
	DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool)
}

// ActionSource is the shot-level counterpart; *resilience.Recognizer
// implements it.
type ActionSource interface {
	RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, bool)
}

type objResult struct {
	dets     []detect.Detection
	degraded bool
}

type actResult struct {
	scores   []detect.ActionScore
	degraded bool
}

// ObjectFlight deduplicates concurrent same-key invocations of one
// resilient detector. It sits ABOVE resilience so a hedged call's
// replicas race inside one shared flight entry — coalescing below the
// hedge would collapse the race the hedge exists to run.
type ObjectFlight struct {
	sh   *Shared
	src  ObjectSource
	name string
}

// ObjectFlight fronts src (identified by name — the backend name used
// in flight keys) with the domain's dedup group.
func (sh *Shared) ObjectFlight(name string, src ObjectSource) *ObjectFlight {
	return &ObjectFlight{sh: sh, src: src, name: name}
}

// DetectCtx coalesces into (or leads) the shared call for this key.
// Every waiter receives its own clone of the result; err is non-nil
// only when THIS waiter's ctx expired — the shared call keeps running
// for the others.
func (f *ObjectFlight) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool, error) {
	k := unitKey('o', f.name, int(v), labels)
	res, coalesced, err := f.sh.objGroup.do(ctx, k, func(cctx context.Context) objResult {
		dets, degraded := f.src.DetectCtx(cctx, v, labels)
		return objResult{dets: dets, degraded: degraded}
	})
	f.sh.noteFlight(coalesced)
	if err != nil {
		return nil, false, err
	}
	return cloneDetections(res.dets), res.degraded, nil
}

// Bind returns the infallible engine-facing detector scoped to ctx
// (a session's lifetime): the engines keep calling plain Detect while
// every call joins the cross-session flight under that ctx.
func (f *ObjectFlight) Bind(ctx context.Context) detect.ObjectDetector {
	if ctx == nil {
		ctx = context.Background()
	}
	return boundObject{f: f, ctx: ctx}
}

type boundObject struct {
	f   *ObjectFlight
	ctx context.Context
}

func (b boundObject) Name() string { return b.f.name }

func (b boundObject) Detect(v video.FrameIdx, labels []annot.Label) []detect.Detection {
	dets, _, _ := b.f.DetectCtx(b.ctx, v, labels)
	return dets
}

// ActionFlight is the shot-level counterpart of ObjectFlight.
type ActionFlight struct {
	sh   *Shared
	src  ActionSource
	name string
}

// ActionFlight fronts src with the domain's dedup group.
func (sh *Shared) ActionFlight(name string, src ActionSource) *ActionFlight {
	return &ActionFlight{sh: sh, src: src, name: name}
}

// RecognizeCtx coalesces into (or leads) the shared call for this key.
func (f *ActionFlight) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, bool, error) {
	k := unitKey('a', f.name, int(s), labels)
	res, coalesced, err := f.sh.actGroup.do(ctx, k, func(cctx context.Context) actResult {
		scores, degraded := f.src.RecognizeCtx(cctx, s, labels)
		return actResult{scores: scores, degraded: degraded}
	})
	f.sh.noteFlight(coalesced)
	if err != nil {
		return nil, false, err
	}
	return cloneScores(res.scores), res.degraded, nil
}

// Bind returns the infallible engine-facing recognizer scoped to ctx.
func (f *ActionFlight) Bind(ctx context.Context) detect.ActionRecognizer {
	if ctx == nil {
		ctx = context.Background()
	}
	return boundAction{f: f, ctx: ctx}
}

type boundAction struct {
	f   *ActionFlight
	ctx context.Context
}

func (b boundAction) Name() string { return b.f.name }

func (b boundAction) Recognize(s video.ShotIdx, labels []annot.Label) []detect.ActionScore {
	scores, _, _ := b.f.RecognizeCtx(b.ctx, s, labels)
	return scores
}

// FallibleObjectSource adapts a fallible backend into an ObjectSource
// for stacks without a resilience layer (the library facade): errors —
// only ctx expiry for the adapted simulators — surface as empty,
// non-degraded results.
func FallibleObjectSource(d detect.FallibleObjectDetector) ObjectSource {
	return fallibleObjSource{d}
}

type fallibleObjSource struct{ d detect.FallibleObjectDetector }

func (p fallibleObjSource) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool) {
	dets, _ := p.d.DetectCtx(ctx, v, labels)
	return dets, false
}

// FallibleActionSource is the shot-level counterpart of
// FallibleObjectSource.
func FallibleActionSource(r detect.FallibleActionRecognizer) ActionSource {
	return fallibleActSource{r}
}

type fallibleActSource struct {
	r detect.FallibleActionRecognizer
}

func (p fallibleActSource) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, bool) {
	scores, _ := p.r.RecognizeCtx(ctx, s, labels)
	return scores, false
}

func (sh *Shared) noteFlight(coalesced bool) {
	if coalesced {
		sh.coalesce.Add(1)
		sh.cCoalesced.Add(1)
	} else {
		sh.leaders.Add(1)
		sh.cLeaders.Add(1)
	}
}
