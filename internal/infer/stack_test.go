package infer

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/synth"
	"vaq/internal/video"
)

// fakeObj is a counting fallible object backend returning one detection
// per (unit, first label) with a score encoding the unit.
type fakeObj struct {
	name  string
	calls atomic.Int64

	mu  sync.Mutex
	err error // error to return, if set
}

func (f *fakeObj) Name() string { return f.name }

func (f *fakeObj) setErr(err error) {
	f.mu.Lock()
	f.err = err
	f.mu.Unlock()
}

func (f *fakeObj) DetectCtx(_ context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	f.calls.Add(1)
	f.mu.Lock()
	err := f.err
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return []detect.Detection{{Label: labels[0], Score: float64(v)}}, nil
}

func TestCachedObjectMemoizes(t *testing.T) {
	fk := &fakeObj{name: "fake"}
	sh := MustNew(Config{CacheCapacity: 16})
	wrapped := sh.Object(fk)
	labels := []annot.Label{"car"}

	first, err := wrapped.DetectCtx(context.Background(), 3, labels)
	if err != nil {
		t.Fatal(err)
	}
	second, err := wrapped.DetectCtx(context.Background(), 3, labels)
	if err != nil {
		t.Fatal(err)
	}
	if fk.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1 (second served from cache)", fk.calls.Load())
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("cached result differs: %v vs %v", first, second)
	}
	st := sh.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("hits %d misses %d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

func TestCachedObjectClonesAcrossCallers(t *testing.T) {
	fk := &fakeObj{name: "fake"}
	sh := MustNew(Config{CacheCapacity: 16})
	wrapped := sh.Object(fk)
	labels := []annot.Label{"car"}

	a, _ := wrapped.DetectCtx(context.Background(), 5, labels)
	// Simulate what Tracker.Update does to engine-held results.
	a[0].Track = 999
	a[0].Score = -1
	b, _ := wrapped.DetectCtx(context.Background(), 5, labels)
	if b[0].Track == 999 || b[0].Score == -1 {
		t.Fatal("mutation through one caller's slice leaked into the cache")
	}
}

func TestCachedObjectDoesNotCacheErrors(t *testing.T) {
	fk := &fakeObj{name: "fake"}
	boom := errors.New("boom")
	fk.setErr(boom)
	sh := MustNew(Config{CacheCapacity: 16})
	wrapped := sh.Object(fk)
	labels := []annot.Label{"car"}

	if _, err := wrapped.DetectCtx(context.Background(), 1, labels); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	fk.setErr(nil)
	dets, err := wrapped.DetectCtx(context.Background(), 1, labels)
	if err != nil || len(dets) != 1 {
		t.Fatalf("recovery call: dets %v err %v", dets, err)
	}
	if fk.calls.Load() != 2 {
		t.Fatalf("backend calls = %d, want 2 (the error was not memoized)", fk.calls.Load())
	}
}

func TestLabelSetKeyIsOrderInsensitive(t *testing.T) {
	fk := &fakeObj{name: "fake"}
	sh := MustNew(Config{CacheCapacity: 16})
	wrapped := sh.Object(fk)

	if _, err := wrapped.DetectCtx(context.Background(), 2, []annot.Label{"car", "person"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wrapped.DetectCtx(context.Background(), 2, []annot.Label{"person", "car"}); err != nil {
		t.Fatal(err)
	}
	if fk.calls.Load() != 1 {
		t.Fatalf("backend calls = %d, want 1 (permuted label set must share the key)", fk.calls.Load())
	}
}

// testScene builds a small deterministic scene for the sim-backed tests.
func testScene(t *testing.T) (*detect.Scene, int) {
	t.Helper()
	qs, err := synth.YouTubeScaled("q2", video.DefaultGeometry(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return qs.World.Scene(), qs.World.Truth.Meta.Frames
}

func TestBatchedObjectVectorizesAndMatchesPerUnit(t *testing.T) {
	scene, frames := testScene(t)
	if frames < 8 {
		t.Fatalf("scene too small: %d frames", frames)
	}
	labels := []annot.Label{"car"}
	ref := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)

	var meter detect.CostMeter
	sim := detect.NewSimObjectDetector(scene, detect.MaskRCNN, &meter)
	sh := MustNew(Config{BatchWindow: 20 * time.Millisecond, BatchMax: 8})
	wrapped := sh.Object(detect.AsFallibleObject(sim))

	const n = 4
	got := make([][]detect.Detection, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dets, err := wrapped.DetectCtx(context.Background(), video.FrameIdx(i), labels)
			if err != nil {
				t.Errorf("unit %d: %v", i, err)
			}
			got[i] = dets
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		want := ref.Detect(video.FrameIdx(i), labels)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("unit %d: batched result %v != per-unit %v", i, got[i], want)
		}
	}
	if meter.Calls() != 1 {
		t.Fatalf("metered calls = %d, want 1 vectorized invocation for the batch", meter.Calls())
	}
	st := sh.Stats()
	if st.Batches != 1 || st.BatchedUnits != int64(n) {
		t.Fatalf("batches %d units %d, want 1/%d", st.Batches, st.BatchedUnits, n)
	}
}

// TestChaosDeterminismCacheOnOff is the acceptance-criterion test: with
// a fixed fault seed, the full stack (sim backend → [cache] → fault
// injector) produces byte-identical results and errors whether the memo
// cache is on or off — the cache sits below the injector, so every
// engine-visible invocation still crosses the same deterministic draws,
// and corrupted results never enter the cache.
func TestChaosDeterminismCacheOnOff(t *testing.T) {
	scene, frames := testScene(t)
	if frames > 200 {
		frames = 200
	}
	sched, err := fault.Parse(42, "error:0-:0.25,corrupt:0-:0.2")
	if err != nil {
		t.Fatal(err)
	}
	labels := []annot.Label{"car"}

	type obs struct {
		dets []detect.Detection
		err  string
	}
	run := func(withCache bool) []obs {
		sim := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		var backend detect.FallibleObjectDetector = detect.AsFallibleObject(sim)
		if withCache {
			backend = MustNew(Config{CacheCapacity: 1024}).Object(backend)
		}
		inj := fault.NewObject(backend, sched)
		var out []obs
		// Three serial passes over every frame: the repeats are what the
		// cache absorbs, and their fault attempt numbers advance the same
		// way in both legs.
		for pass := 0; pass < 3; pass++ {
			for f := 0; f < frames; f++ {
				dets, err := inj.DetectCtx(context.Background(), video.FrameIdx(f), labels)
				o := obs{dets: dets}
				if err != nil {
					o.err = err.Error()
				}
				out = append(out, o)
			}
		}
		return out
	}

	off := run(false)
	on := run(true)
	if len(off) != len(on) {
		t.Fatalf("observation counts differ: %d vs %d", len(off), len(on))
	}
	for i := range off {
		if !reflect.DeepEqual(off[i], on[i]) {
			t.Fatalf("observation %d diverges under the cache:\n  off: %+v\n  on:  %+v", i, off[i], on[i])
		}
	}
}

// srcFromFake adapts fakeObj into an ObjectSource for flight tests.
type srcFromFake struct{ f *fakeObj }

func (s srcFromFake) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool) {
	dets, _ := s.f.DetectCtx(ctx, v, labels)
	return dets, false
}

func TestFlightBindDropsDegradedAndError(t *testing.T) {
	fk := &fakeObj{name: "fake"}
	sh := MustNew(Config{})
	f := sh.ObjectFlight("fake", srcFromFake{fk})
	det := f.Bind(context.Background())
	if det.Name() != "fake" {
		t.Fatalf("Name = %q", det.Name())
	}
	dets := det.Detect(4, []annot.Label{"car"})
	if len(dets) != 1 || dets[0].Score != 4 {
		t.Fatalf("Detect = %v", dets)
	}
}

func TestFlightCoalescesAndClonesPerWaiter(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int64
	src := blockingSrc{release: release, started: started, calls: &calls}
	sh := MustNew(Config{})
	f := sh.ObjectFlight("b", src)
	labels := []annot.Label{"car"}

	const n = 6
	results := make([][]detect.Detection, n)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _, _ = f.DetectCtx(context.Background(), 9, labels)
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, _ = f.DetectCtx(context.Background(), 9, labels)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if calls.Load() != 1 {
		t.Fatalf("source calls = %d, want 1", calls.Load())
	}
	for i := 0; i < n; i++ {
		if len(results[i]) != 1 || results[i][0].Score != 9 {
			t.Fatalf("waiter %d got %v", i, results[i])
		}
		for j := i + 1; j < n; j++ {
			if &results[i][0] == &results[j][0] {
				t.Fatalf("waiters %d and %d share a backing array", i, j)
			}
		}
	}
	st := sh.Stats()
	if st.Leaders != 1 || st.Coalesced != n-1 {
		t.Fatalf("leaders %d coalesced %d, want 1/%d", st.Leaders, st.Coalesced, n-1)
	}
}

type blockingSrc struct {
	release chan struct{}
	started chan struct{}
	calls   *atomic.Int64
}

func (s blockingSrc) DetectCtx(_ context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, bool) {
	s.calls.Add(1)
	close(s.started)
	<-s.release
	return []detect.Detection{{Label: labels[0], Score: float64(v)}}, false
}

func TestFlightWaiterCancellation(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int64
	src := blockingSrc{release: release, started: started, calls: &calls}
	sh := MustNew(Config{})
	f := sh.ObjectFlight("b", src)
	labels := []annot.Label{"car"}

	leaderOut := make(chan []detect.Detection, 1)
	go func() {
		dets, _, _ := f.DetectCtx(context.Background(), 1, labels)
		leaderOut <- dets
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := f.DetectCtx(ctx, 1, labels)
		waiterErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-waiterErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
	if dets := <-leaderOut; len(dets) != 1 {
		t.Fatalf("leader starved by a cancelled waiter: %v", dets)
	}
}

func TestStatsAddAggregates(t *testing.T) {
	a := Stats{CacheHits: 1, CacheMisses: 2, Admitted: 3, Evicted: 4, DoorRejected: 5,
		Leaders: 6, Coalesced: 7, Batches: 8, BatchedUnits: 9}
	var agg Stats
	agg.Add(a)
	agg.Add(a)
	want := Stats{CacheHits: 2, CacheMisses: 4, Admitted: 6, Evicted: 8, DoorRejected: 10,
		Leaders: 12, Coalesced: 14, Batches: 16, BatchedUnits: 18}
	if agg != want {
		t.Fatalf("agg = %+v, want %+v", agg, want)
	}
}

func TestUnitKeyDistinguishesKindBackendUnit(t *testing.T) {
	keys := map[string]bool{}
	for _, k := range []string{
		unitKey('o', "m", 1, []annot.Label{"car"}),
		unitKey('a', "m", 1, []annot.Label{"car"}),
		unitKey('o', "n", 1, []annot.Label{"car"}),
		unitKey('o', "m", 2, []annot.Label{"car"}),
		unitKey('o', "m", 1, []annot.Label{"person"}),
	} {
		if keys[k] {
			t.Fatalf("key collision: %q", k)
		}
		keys[k] = true
	}
	if unitKey('o', "m", 1, []annot.Label{"a", "b"}) != unitKey('o', "m", 1, []annot.Label{"b", "a"}) {
		t.Fatal("label order changed the key")
	}
}

func TestSharedRaceSmoke(t *testing.T) {
	// Concurrent sessions over one domain: cache + dedup + batching all
	// active at once (run under -race in CI).
	scene, frames := testScene(t)
	if frames > 64 {
		frames = 64
	}
	sim := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	sh := MustNew(Config{CacheCapacity: 32, BatchWindow: time.Millisecond, BatchMax: 4})
	f := sh.ObjectFlight("m", FallibleObjectSource(sh.Object(detect.AsFallibleObject(sim))))

	var wg sync.WaitGroup
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			det := f.Bind(context.Background())
			for i := 0; i < frames; i++ {
				det.Detect(video.FrameIdx(i), []annot.Label{annot.Label(fmt.Sprintf("l%d", i%3))})
			}
		}(s)
	}
	wg.Wait()
	st := sh.Stats()
	if st.Leaders == 0 {
		t.Fatal("no flight activity recorded")
	}
}

func TestActionPathFullStack(t *testing.T) {
	scene, _ := testScene(t)
	var meter detect.CostMeter
	sim := detect.NewSimActionRecognizer(scene, detect.I3D, &meter)
	ref := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	sh := MustNew(Config{CacheCapacity: 16, BatchWindow: 5 * time.Millisecond, BatchMax: 8})
	if sh.Config().BatchMax != 8 {
		t.Fatalf("Config.BatchMax = %d", sh.Config().BatchMax)
	}
	f := sh.ActionFlight(sim.Name(), FallibleActionSource(sh.Action(detect.AsFallibleAction(sim))))
	rec := f.Bind(context.Background())
	if rec.Name() != sim.Name() {
		t.Fatalf("Name = %q, want %q", rec.Name(), sim.Name())
	}
	labels := []annot.Label{"blowing_leaves"}

	// Two concurrent shots ride one micro-batch; a repeat hits the cache.
	const n = 3
	got := make([][]detect.ActionScore, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = rec.Recognize(video.ShotIdx(i), labels)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		want := ref.Recognize(video.ShotIdx(i), labels)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("shot %d: %v != %v", i, got[i], want)
		}
	}
	callsAfterFirst := meter.Calls()
	repeat := rec.Recognize(0, labels)
	if !reflect.DeepEqual(repeat, got[0]) {
		t.Fatalf("cached repeat %v != first %v", repeat, got[0])
	}
	if meter.Calls() != callsAfterFirst {
		t.Fatalf("repeat reached the backend: %d -> %d calls", callsAfterFirst, meter.Calls())
	}
	st := sh.Stats()
	if st.CacheHits == 0 || st.BatchedUnits < n {
		t.Fatalf("stats %+v: want cache hits and >= %d batched units", st, n)
	}
	// The direct flight face reports waiter-scoped errors.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.RecognizeCtx(ctx, 0, labels); err == nil {
		// A cache hit below resolves before the ctx check only if the
		// flight completed instantly; either way the call must not hang.
		t.Log("cancelled ctx still served (fast path)")
	}
}

func TestBatchShapeErrorMessage(t *testing.T) {
	if errBatchShape.Error() == "" {
		t.Fatal("empty error message")
	}
}
