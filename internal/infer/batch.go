package infer

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vaq/internal/annot"
)

// accumulator implements bounded-delay micro-batching: invocations for
// the same label-set key arriving within window of each other (and up
// to maxN of them) are flushed as one vectorized call. The first
// arrival arms a timer; reaching maxN flushes immediately (concurrent
// arrivals racing the flush may ride along, so maxN is a soft cap). The
// flush runs on a context detached from the first arrival, so a caller
// cancelling mid-window abandons only its own wait, not the batch.
type accumulator[T any] struct {
	window time.Duration
	maxN   int
	// run performs the vectorized call for one flushed batch.
	run func(ctx context.Context, units []int, labels []annot.Label) ([]T, error)
	// observe reports each flush's size and duration for instrumentation.
	observe func(n int, d time.Duration)

	mu     sync.Mutex
	groups map[string]*bgroup[T]
}

type bgroup[T any] struct {
	key     string
	ctx     context.Context
	labels  []annot.Label
	units   []int
	outs    []chan batchOut[T]
	timer   *time.Timer
	flushed bool
}

type batchOut[T any] struct {
	val T
	err error
}

// newAccumulator validates its sizing at construction. A maxN ≤ 0 would
// silently degenerate the batcher — every arrival is instantly "full",
// so nothing ever batches while a window timer is still armed per call
// — and a window ≤ 0 would flush every group the moment its timer is
// created; both are configuration bugs, not operating points, so they
// are rejected rather than clamped.
func newAccumulator[T any](window time.Duration, maxN int,
	run func(ctx context.Context, units []int, labels []annot.Label) ([]T, error),
	observe func(n int, d time.Duration)) (*accumulator[T], error) {
	if window <= 0 {
		return nil, fmt.Errorf("infer: batch window must be positive, got %v", window)
	}
	if maxN <= 0 {
		return nil, fmt.Errorf("infer: batch max must be positive, got %d", maxN)
	}
	return &accumulator[T]{
		window:  window,
		maxN:    maxN,
		run:     run,
		observe: observe,
		groups:  make(map[string]*bgroup[T]),
	}, nil
}

// do enqueues unit under the label-set key and waits for its result
// from the batch flush. ctx expiry abandons the wait (the batch still
// serves the remaining members).
func (a *accumulator[T]) do(ctx context.Context, key string, unit int, labels []annot.Label) (T, error) {
	out := make(chan batchOut[T], 1)
	a.mu.Lock()
	g, ok := a.groups[key]
	if !ok {
		g = &bgroup[T]{
			key:    key,
			ctx:    context.WithoutCancel(ctx),
			labels: append([]annot.Label(nil), labels...),
		}
		a.groups[key] = g
		g.timer = time.AfterFunc(a.window, func() { a.flush(g) })
	}
	g.units = append(g.units, unit)
	g.outs = append(g.outs, out)
	full := len(g.units) >= a.maxN
	a.mu.Unlock()
	if full {
		a.flush(g)
	}
	select {
	case r := <-out:
		return r.val, r.err
	case <-ctx.Done():
		var zero T
		return zero, ctx.Err()
	}
}

// flush closes the group (idempotently), runs the vectorized call and
// fans results out to every member.
func (a *accumulator[T]) flush(g *bgroup[T]) {
	a.mu.Lock()
	if g.flushed {
		a.mu.Unlock()
		return
	}
	g.flushed = true
	g.timer.Stop()
	if a.groups[g.key] == g {
		delete(a.groups, g.key)
	}
	units, outs := g.units, g.outs
	a.mu.Unlock()

	start := time.Now()
	vals, err := a.run(g.ctx, units, g.labels)
	if err == nil && len(vals) != len(units) {
		// A well-behaved backend returns one result per unit; anything
		// else is a contract violation surfaced to every waiter.
		err = errBatchShape
	}
	if a.observe != nil {
		a.observe(len(units), time.Since(start))
	}
	for i, out := range outs {
		if err != nil {
			var zero T
			out <- batchOut[T]{zero, err}
			continue
		}
		out <- batchOut[T]{vals[i], nil}
	}
}

type batchShapeError struct{}

func (batchShapeError) Error() string { return "infer: batch backend returned wrong result count" }

var errBatchShape = batchShapeError{}
