package infer

import (
	"context"
	"sync"
)

// group is the singleflight core: at most one shared call per key runs
// at a time; callers arriving while it is in flight wait on the same
// entry. Unlike x/sync's singleflight, waiters are individually
// cancellable — a waiter whose ctx expires leaves without disturbing
// the shared call, and only when the LAST waiter is gone is the shared
// call's context cancelled. The shared call runs on a context detached
// from any single waiter (values preserved from the leader's ctx, no
// cancellation inheritance), so the leader disconnecting mid-call does
// not starve the waiters that coalesced behind it.
type group[T any] struct {
	mu    sync.Mutex
	calls map[string]*call[T]
}

type call[T any] struct {
	done    chan struct{}
	val     T
	waiters int
	cancel  context.CancelFunc
}

// do invokes fn under key's shared call. The bool reports whether this
// caller coalesced into an existing flight (false for the leader). On
// ctx expiry the caller's own ctx error is returned; the shared call
// continues for any remaining waiters.
func (g *group[T]) do(ctx context.Context, key string, fn func(context.Context) T) (T, bool, error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*call[T])
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		return g.wait(ctx, key, c, true)
	}
	cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	c := &call[T]{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.calls[key] = c
	g.mu.Unlock()
	go func() {
		v := fn(cctx)
		g.mu.Lock()
		c.val = v
		if g.calls[key] == c {
			delete(g.calls, key)
		}
		g.mu.Unlock()
		cancel()
		close(c.done)
	}()
	return g.wait(ctx, key, c, false)
}

func (g *group[T]) wait(ctx context.Context, key string, c *call[T], coalesced bool) (T, bool, error) {
	select {
	case <-c.done:
		return c.val, coalesced, nil
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		if c.waiters == 0 {
			// Last waiter gone: nobody wants the result, stop the call.
			c.cancel()
			if g.calls[key] == c {
				delete(g.calls, key)
			}
		}
		g.mu.Unlock()
		var zero T
		return zero, coalesced, ctx.Err()
	}
}
