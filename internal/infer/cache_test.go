package infer

import (
	"fmt"
	"testing"

	"vaq/internal/trace"
)

func TestCacheAdmitsDirectlyWhileFree(t *testing.T) {
	c := newCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if got := c.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("get(a) = %v, %v", v, ok)
	}
	if v, ok := c.get("b"); !ok || v.(int) != 2 {
		t.Fatalf("get(b) = %v, %v", v, ok)
	}
	if c.admitted.Load() != 2 || c.doorRejected.Load() != 0 {
		t.Fatalf("admitted %d, doorRejected %d; want 2, 0 (no pressure, no doorkeeper)",
			c.admitted.Load(), c.doorRejected.Load())
	}
}

func TestCacheRefreshesExistingKey(t *testing.T) {
	c := newCache(1)
	c.put("a", 1)
	c.put("a", 2)
	if v, ok := c.get("a"); !ok || v.(int) != 2 {
		t.Fatalf("get(a) = %v, %v; want refreshed value 2", v, ok)
	}
	if got := c.Len(); got != 1 {
		t.Fatalf("Len = %d, want 1", got)
	}
}

func TestCacheDoorkeeperUnderPressure(t *testing.T) {
	c := newCache(1)
	c.put("a", 1)

	// First sighting of b under pressure: remembered, not admitted.
	c.put("b", 2)
	if _, ok := c.get("b"); ok {
		t.Fatal("b admitted on first sighting under pressure")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("resident a displaced by a one-hit wonder")
	}
	if c.doorRejected.Load() != 1 {
		t.Fatalf("doorRejected = %d, want 1", c.doorRejected.Load())
	}

	// Second sighting: admitted, evicting the resident.
	c.put("b", 2)
	if _, ok := c.get("b"); !ok {
		t.Fatal("b not admitted on second sighting")
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("a still resident after eviction")
	}
	if c.evicted.Load() != 1 {
		t.Fatalf("evicted = %d, want 1", c.evicted.Load())
	}
}

func TestCacheSecondChanceSparesReferenced(t *testing.T) {
	c := newCache(2)
	c.put("a", 1)
	c.put("b", 2)
	// Touch a so it carries a reference bit into the eviction scan.
	c.get("a")
	// Admit c under pressure (door pass needs two sightings).
	c.put("c", 3)
	c.put("c", 3)
	if _, ok := c.get("a"); !ok {
		t.Fatal("referenced entry a evicted despite its second chance")
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("unreferenced entry b survived the clock scan")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("admitted entry c missing")
	}
}

func TestCacheDoorkeeperEpochReset(t *testing.T) {
	c := newCache(1)
	c.put("resident", 0)
	// Flood the doorkeeper far past 8*cap: the epoch reset must keep its
	// size bounded rather than growing with every one-hit wonder.
	for i := 0; i < 100; i++ {
		c.put(fmt.Sprintf("w%d", i), i)
	}
	if len(c.door) > 8*c.cap+1 {
		t.Fatalf("doorkeeper grew to %d entries, cap %d — epoch reset missing", len(c.door), c.cap)
	}
	if _, ok := c.get("resident"); !ok {
		t.Fatal("resident evicted by unadmitted keys")
	}
}

// TestCacheTraceCountersMirrorStats pins the /varz side of the
// admission flow: the tracer counters must move in lockstep with the
// atomics Stats() reads, or the two surfaces silently disagree.
func TestCacheTraceCountersMirrorStats(t *testing.T) {
	tr := trace.New()
	sh := MustNew(Config{CacheCapacity: 1, Tracer: tr})
	sh.cache.put("a", 1) // direct admit (free slot)
	sh.cache.put("b", 2) // doorkeeper reject (first sighting under pressure)
	sh.cache.put("b", 2) // admit + evict a
	st := sh.Stats()
	if st.Admitted != 2 || st.Evicted != 1 || st.DoorRejected != 1 {
		t.Fatalf("stats = %+v, want admitted 2, evicted 1, doorRejected 1", st)
	}
	for name, want := range map[string]int64{
		"infer.cache_admitted":      st.Admitted,
		"infer.cache_evicted":       st.Evicted,
		"infer.cache_door_rejected": st.DoorRejected,
	} {
		if got := tr.Counter(name).Value(); got != want {
			t.Errorf("counter %s = %d, stats say %d", name, got, want)
		}
	}
}

func TestCacheBoundedAtCapacity(t *testing.T) {
	c := newCache(4)
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		c.put(k, i)
		c.put(k, i) // second sighting passes the doorkeeper under pressure
	}
	if got := c.Len(); got > 4 {
		t.Fatalf("Len = %d, want <= capacity 4", got)
	}
}
