package infer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vaq/internal/annot"
)

// mustAccumulator unwraps newAccumulator for tests exercising valid
// configurations.
func mustAccumulator[T any](t *testing.T, window time.Duration, maxN int,
	run func(context.Context, []int, []annot.Label) ([]T, error),
	observe func(int, time.Duration)) *accumulator[T] {
	t.Helper()
	acc, err := newAccumulator(window, maxN, run, observe)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// echoRun returns each unit's value as 10*unit, recording every flush.
func echoRun(flushes *[][]int, mu *sync.Mutex) func(context.Context, []int, []annot.Label) ([]int, error) {
	return func(_ context.Context, units []int, _ []annot.Label) ([]int, error) {
		mu.Lock()
		*flushes = append(*flushes, append([]int(nil), units...))
		mu.Unlock()
		out := make([]int, len(units))
		for i, u := range units {
			out[i] = 10 * u
		}
		return out, nil
	}
}

// TestAccumulatorRejectsDegenerateSizing pins the construction-time
// validation: a maxN ≤ 0 or window ≤ 0 accumulator must be an error,
// not a silently degenerate batcher.
func TestAccumulatorRejectsDegenerateSizing(t *testing.T) {
	run := func(_ context.Context, units []int, _ []annot.Label) ([]int, error) {
		return make([]int, len(units)), nil
	}
	for _, tc := range []struct {
		name   string
		window time.Duration
		maxN   int
	}{
		{"zero maxN", time.Millisecond, 0},
		{"negative maxN", time.Millisecond, -3},
		{"zero window", 0, 8},
		{"negative window", -time.Millisecond, 8},
	} {
		if _, err := newAccumulator(tc.window, tc.maxN, run, nil); err == nil {
			t.Errorf("%s: newAccumulator accepted the configuration", tc.name)
		}
	}
}

func TestBatchWindowGroupsArrivals(t *testing.T) {
	var mu sync.Mutex
	var flushes [][]int
	acc := mustAccumulator(t, 30*time.Millisecond, 100, echoRun(&flushes, &mu), nil)

	const n = 4
	got := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := acc.do(context.Background(), "L", i, []annot.Label{"car"})
			if err != nil {
				t.Errorf("unit %d: %v", i, err)
			}
			got[i] = v
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if got[i] != 10*i {
			t.Fatalf("unit %d got %d, want %d", i, got[i], 10*i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 1 {
		t.Fatalf("flushes = %v, want one combined batch", flushes)
	}
	if len(flushes[0]) != n {
		t.Fatalf("batch covered %d units, want %d", len(flushes[0]), n)
	}
}

func TestBatchMaxFlushesWithoutWaiting(t *testing.T) {
	var mu sync.Mutex
	var flushes [][]int
	// An hour-long window: only the maxN trigger can flush in test time.
	acc := mustAccumulator(t, time.Hour, 2, echoRun(&flushes, &mu), nil)

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			v, _ := acc.do(context.Background(), "L", i, nil)
			done <- v
		}(i)
	}
	deadline := time.After(5 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-deadline:
			t.Fatal("batch never flushed at maxN")
		}
	}
}

func TestBatchDistinctKeysDoNotMix(t *testing.T) {
	var mu sync.Mutex
	var flushes [][]int
	acc := mustAccumulator(t, 20*time.Millisecond, 100, echoRun(&flushes, &mu), nil)

	var wg sync.WaitGroup
	for i, key := range []string{"A", "B"} {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			if _, err := acc.do(context.Background(), key, i, nil); err != nil {
				t.Errorf("key %s: %v", key, err)
			}
		}(i, key)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(flushes) != 2 {
		t.Fatalf("flushes = %v, want two single-unit batches", flushes)
	}
}

func TestBatchShapeErrorFansOut(t *testing.T) {
	bad := func(_ context.Context, units []int, _ []annot.Label) ([]int, error) {
		return make([]int, len(units)+1), nil
	}
	acc := mustAccumulator(t, 5*time.Millisecond, 100, bad, nil)
	if _, err := acc.do(context.Background(), "L", 0, nil); !errors.Is(err, errBatchShape) {
		t.Fatalf("err = %v, want errBatchShape", err)
	}
}

func TestBatchRunErrorFansOut(t *testing.T) {
	boom := errors.New("boom")
	fail := func(context.Context, []int, []annot.Label) ([]int, error) { return nil, boom }
	acc := mustAccumulator(t, 5*time.Millisecond, 100, fail, nil)
	if _, err := acc.do(context.Background(), "L", 0, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestBatchWaiterCancelAbandonsOnlyItsWait(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	run := func(_ context.Context, units []int, _ []annot.Label) ([]int, error) {
		once.Do(func() { close(entered) })
		<-release
		out := make([]int, len(units))
		for i, u := range units {
			out[i] = u
		}
		return out, nil
	}
	acc := mustAccumulator(t, 5*time.Millisecond, 100, run, nil)

	survivor := make(chan int, 1)
	go func() {
		v, _ := acc.do(context.Background(), "L", 1, nil)
		survivor <- v
	}()
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan error, 1)
	go func() {
		_, err := acc.do(ctx, "L", 2, nil)
		cancelled <- err
	}()
	<-entered // the batch (with both members) is mid-flush
	cancel()
	if err := <-cancelled; err != context.Canceled {
		t.Fatalf("cancelled member err = %v, want context.Canceled", err)
	}
	close(release)
	select {
	case v := <-survivor:
		if v != 1 {
			t.Fatalf("survivor got %d, want 1", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("surviving member starved after a peer cancelled")
	}
}

func TestBatchObserveReportsSize(t *testing.T) {
	var n atomic.Int64
	obs := func(size int, _ time.Duration) { n.Store(int64(size)) }
	var mu sync.Mutex
	var flushes [][]int
	acc := mustAccumulator(t, time.Hour, 3, echoRun(&flushes, &mu), obs)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acc.do(context.Background(), "L", i, nil)
		}(i)
	}
	wg.Wait()
	if n.Load() != 3 {
		t.Fatalf("observed batch size %d, want 3", n.Load())
	}
}
