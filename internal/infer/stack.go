package infer

import (
	"context"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/video"
)

// Object wraps a fallible object backend with the domain's below-fault
// layers: the memo cache on top (when CacheCapacity > 0) of the
// micro-batcher (when BatchWindow > 0) of the backend. The returned
// backend is what the fault injector — and above it the resilience
// layer — should wrap: every engine-visible invocation still crosses
// fault's deterministic draws, and a fault-corrupted result is produced
// above this layer, so the cache only ever holds clean scores.
func (sh *Shared) Object(backend detect.FallibleObjectDetector) detect.FallibleObjectDetector {
	out := backend
	if sh.cfg.BatchWindow > 0 {
		out = sh.newBatchedObject(out)
	}
	if sh.cache != nil {
		out = &cachedObject{inner: out, sh: sh, name: backend.Name()}
	}
	return out
}

// Action is the shot-level counterpart of Object.
func (sh *Shared) Action(backend detect.FallibleActionRecognizer) detect.FallibleActionRecognizer {
	out := backend
	if sh.cfg.BatchWindow > 0 {
		out = sh.newBatchedAction(out)
	}
	if sh.cache != nil {
		out = &cachedAction{inner: out, sh: sh, name: backend.Name()}
	}
	return out
}

// cachedObject memoizes clean results below fault. Slices are cloned on
// both put and get: Tracker.Update mutates Detection.Track in place.
type cachedObject struct {
	inner detect.FallibleObjectDetector
	sh    *Shared
	name  string
}

func (c *cachedObject) Name() string { return c.name }

func (c *cachedObject) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	k := unitKey('o', c.name, int(v), labels)
	if val, ok := c.sh.cache.get(k); ok {
		c.sh.cHits.Add(1)
		return cloneDetections(val.([]detect.Detection)), nil
	}
	c.sh.cMisses.Add(1)
	dets, err := c.inner.DetectCtx(ctx, v, labels)
	if err != nil {
		return nil, err
	}
	c.sh.cache.put(k, cloneDetections(dets))
	return dets, nil
}

type cachedAction struct {
	inner detect.FallibleActionRecognizer
	sh    *Shared
	name  string
}

func (c *cachedAction) Name() string { return c.name }

func (c *cachedAction) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, error) {
	k := unitKey('a', c.name, int(s), labels)
	if val, ok := c.sh.cache.get(k); ok {
		c.sh.cHits.Add(1)
		return cloneScores(val.([]detect.ActionScore)), nil
	}
	c.sh.cMisses.Add(1)
	scores, err := c.inner.RecognizeCtx(ctx, s, labels)
	if err != nil {
		return nil, err
	}
	c.sh.cache.put(k, cloneScores(scores))
	return scores, nil
}

// batchedObject funnels same-label-set invocations through the bounded-
// delay accumulator. When the wrapped backend (unwrapped through the
// infallible adapter) supports DetectBatch, multi-unit flushes become
// one vectorized call; otherwise the flush loops per unit, which still
// bounds concurrent backend pressure without changing results.
type batchedObject struct {
	inner detect.FallibleObjectDetector
	acc   *accumulator[[]detect.Detection]
}

func (sh *Shared) newBatchedObject(backend detect.FallibleObjectDetector) *batchedObject {
	var vec detect.BatchObjectDetector
	if u, ok := backend.(interface{ Unwrap() detect.ObjectDetector }); ok {
		vec, _ = u.Unwrap().(detect.BatchObjectDetector)
	}
	run := func(ctx context.Context, units []int, labels []annot.Label) ([][]detect.Detection, error) {
		if vec != nil && len(units) > 1 {
			vs := make([]video.FrameIdx, len(units))
			for i, u := range units {
				vs[i] = video.FrameIdx(u)
			}
			return vec.DetectBatch(vs, labels), nil
		}
		out := make([][]detect.Detection, len(units))
		for i, u := range units {
			dets, err := backend.DetectCtx(ctx, video.FrameIdx(u), labels)
			if err != nil {
				return nil, err
			}
			out[i] = dets
		}
		return out, nil
	}
	acc, err := newAccumulator(sh.cfg.BatchWindow, sh.cfg.BatchMax, run, sh.observeFlush)
	if err != nil {
		// Unreachable: New rejects invalid batching configurations.
		panic(err)
	}
	return &batchedObject{inner: backend, acc: acc}
}

func (b *batchedObject) Name() string { return b.inner.Name() }

func (b *batchedObject) DetectCtx(ctx context.Context, v video.FrameIdx, labels []annot.Label) ([]detect.Detection, error) {
	return b.acc.do(ctx, labelsKey(labels), int(v), labels)
}

type batchedAction struct {
	inner detect.FallibleActionRecognizer
	acc   *accumulator[[]detect.ActionScore]
}

func (sh *Shared) newBatchedAction(backend detect.FallibleActionRecognizer) *batchedAction {
	var vec detect.BatchActionRecognizer
	if u, ok := backend.(interface {
		Unwrap() detect.ActionRecognizer
	}); ok {
		vec, _ = u.Unwrap().(detect.BatchActionRecognizer)
	}
	run := func(ctx context.Context, units []int, labels []annot.Label) ([][]detect.ActionScore, error) {
		if vec != nil && len(units) > 1 {
			ss := make([]video.ShotIdx, len(units))
			for i, u := range units {
				ss[i] = video.ShotIdx(u)
			}
			return vec.RecognizeBatch(ss, labels), nil
		}
		out := make([][]detect.ActionScore, len(units))
		for i, u := range units {
			scores, err := backend.RecognizeCtx(ctx, video.ShotIdx(u), labels)
			if err != nil {
				return nil, err
			}
			out[i] = scores
		}
		return out, nil
	}
	acc, err := newAccumulator(sh.cfg.BatchWindow, sh.cfg.BatchMax, run, sh.observeFlush)
	if err != nil {
		// Unreachable: New rejects invalid batching configurations.
		panic(err)
	}
	return &batchedAction{inner: backend, acc: acc}
}

func (b *batchedAction) Name() string { return b.inner.Name() }

func (b *batchedAction) RecognizeCtx(ctx context.Context, s video.ShotIdx, labels []annot.Label) ([]detect.ActionScore, error) {
	return b.acc.do(ctx, labelsKey(labels), int(s), labels)
}

// observeFlush records one batch flush in the counters, the batch-size
// sketch (unitless: n observed as n microseconds) and the flush-latency
// sketch.
func (sh *Shared) observeFlush(n int, d time.Duration) {
	sh.batches.Add(1)
	sh.batchUnits.Add(int64(n))
	sh.cBatches.Add(1)
	sh.cBatchUnits.Add(int64(n))
	sh.sBatchSize.Observe(time.Duration(n) * time.Microsecond)
	sh.sBatchFlush.Observe(d)
}
