package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdditiveCombineLabel(t *testing.T) {
	a := Additive{}
	if got := a.CombineLabel(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := a.CombineLabel([]float64{1, 2, 3.5}); got != 6.5 {
		t.Errorf("sum = %v", got)
	}
}

func TestAdditiveCombineClip(t *testing.T) {
	a := Additive{}
	if got := a.CombineClip(2, []float64{3, 4}); got != 14 {
		t.Errorf("g = %v, want a*(sum o) = 14", got)
	}
	if got := a.CombineClip(2, nil); got != 2 {
		t.Errorf("action-only g = %v", got)
	}
	if got := a.CombineClip(0, []float64{3, 4}); got != 0 {
		t.Errorf("zero action g = %v", got)
	}
}

func TestAdditiveSeq(t *testing.T) {
	a := Additive{}
	if got := a.CombineSeq([]float64{1, 2, 3}); got != 6 {
		t.Errorf("f = %v", got)
	}
	if a.CombineSeq(nil) != a.Zero() {
		t.Error("empty f != Zero")
	}
	if a.Merge(2, 3) != 5 || a.MergeN(2, 3) != 6 {
		t.Error("merge wrong")
	}
}

func TestMaxSeq(t *testing.T) {
	m := MaxSeq{}
	if got := m.CombineSeq([]float64{1, 5, 3}); got != 5 {
		t.Errorf("f = %v", got)
	}
	if m.CombineSeq(nil) != m.Zero() {
		t.Error("empty f != Zero")
	}
	if m.Merge(2, 3) != 3 || m.Merge(4, 1) != 4 {
		t.Error("merge wrong")
	}
	if m.MergeN(2, 0) != 0 || m.MergeN(2, 5) != 2 {
		t.Error("mergeN wrong")
	}
}

func TestDefaultComplete(t *testing.T) {
	fns := Default()
	if fns.H == nil || fns.G == nil || fns.F == nil {
		t.Fatal("Default scheme incomplete")
	}
}

// fContract checks the §4.1 sequence-score contract for an F over
// non-negative clip scores.
func fContract(t *testing.T, name string, f F) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(10)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = rng.Float64() * 10
		}
		total := f.CombineSeq(scores)
		// Monotonicity: raising any clip score cannot lower the total.
		i := rng.Intn(n)
		bumped := append([]float64{}, scores...)
		bumped[i] += 1
		if f.CombineSeq(bumped) < total-1e-9 {
			t.Fatalf("%s: not monotone", name)
		}
		// Sub-sequence dominance.
		cut := rng.Intn(n)
		if f.CombineSeq(scores[:cut]) > total+1e-9 {
			t.Fatalf("%s: sub-sequence outscores sequence", name)
		}
		// Decomposability: S(z) = S(z1) ⊙ S(z2).
		merged := f.Merge(f.CombineSeq(scores[:cut]), f.CombineSeq(scores[cut:]))
		if math.Abs(merged-total) > 1e-9 {
			t.Fatalf("%s: decomposition %v != %v", name, merged, total)
		}
		// MergeN agrees with repeated Merge.
		s := rng.Float64() * 5
		k := rng.Intn(6)
		iter := f.Zero()
		for j := 0; j < k; j++ {
			iter = f.Merge(iter, s)
		}
		if math.Abs(f.MergeN(s, k)-iter) > 1e-9 {
			t.Fatalf("%s: MergeN(%v,%d)=%v != iterated %v", name, s, k, f.MergeN(s, k), iter)
		}
	}
}

func TestAdditiveContract(t *testing.T) { fContract(t, "Additive", Additive{}) }
func TestMaxSeqContract(t *testing.T)   { fContract(t, "MaxSeq", MaxSeq{}) }

func TestQuickGMonotone(t *testing.T) {
	g := Additive{}
	f := func(a uint8, objs []uint8, bumpIdx uint8) bool {
		if len(objs) == 0 {
			return true
		}
		act := float64(a) / 10
		base := make([]float64, len(objs))
		for i, o := range objs {
			base[i] = float64(o) / 10
		}
		before := g.CombineClip(act, base)
		i := int(bumpIdx) % len(objs)
		base[i] += 1
		return g.CombineClip(act, base) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
