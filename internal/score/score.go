// Package score defines the scoring-function framework of §4.1: the
// per-label clip score h, the clip combiner g, and the sequence combiner
// f with its aggregation operator ⊙ (Equation 11). RVAQ's bound
// maintenance only relies on the contract spelled out in §4.1
// (monotonicity, sub-sequence dominance, decomposability), so any
// implementation of Functions can be plugged in; Additive is the
// instance used in the paper's experiments (§5).
package score

// H combines the raw detection scores of one label inside one clip into
// the label's clip score S_l^(c) (Equation 7/8). The paper imposes no
// constraints on h.
type H interface {
	// CombineLabel folds raw per-frame (or per-shot) scores. An empty
	// input must yield the label's zero contribution.
	CombineLabel(raw []float64) float64
}

// G combines per-predicate clip scores into the clip's overall score
// S_q^(c) (Equation 9). It must be monotone in every argument.
type G interface {
	// CombineClip receives the action's clip score and the object
	// predicates' clip scores in query order.
	CombineClip(action float64, objects []float64) float64
}

// F combines clip scores into a sequence score S_q^(z) (Equation 10).
// The §4.1 contract:
//
//   - monotone in every clip score,
//   - a sub-sequence never outscores its super-sequence,
//   - decomposable: S(z1 ∪ z2) = S(z1) ⊙ S(z2) for disjoint covers,
//     with ⊙ exposed via Merge.
type F interface {
	// CombineSeq folds the clip scores of a sequence. Empty input must
	// yield Zero.
	CombineSeq(clipScores []float64) float64
	// Merge is the ⊙ operator of Equation 11.
	Merge(a, b float64) float64
	// MergeN merges n copies of the same clip score (used by RVAQ's
	// bound maintenance: "the score of the L remaining clips is at most
	// that of merging L copies of the bounding value", Equations 13–14).
	MergeN(s float64, n int) float64
	// Zero is the identity of Merge (score of an empty sequence).
	Zero() float64
}

// Functions bundles a full scoring scheme.
type Functions struct {
	H H
	G G
	F F
}

// Additive is the instance used in §5:
//
//	h: sum of raw scores,
//	g: S_a^(c) · Σ_i S_oi^(c)   (falling back to the sum of whatever
//	   predicates exist when the query lacks an action or objects),
//	f: sum over clips, ⊙ = +.
type Additive struct{}

// CombineLabel implements H: the sum of raw scores.
func (Additive) CombineLabel(raw []float64) float64 {
	s := 0.0
	for _, v := range raw {
		s += v
	}
	return s
}

// CombineClip implements G: action score times the sum of object
// scores. Queries with only an action (or only objects) degrade to the
// sum of present predicates so the score stays meaningful.
func (Additive) CombineClip(action float64, objects []float64) float64 {
	objSum := 0.0
	for _, v := range objects {
		objSum += v
	}
	if len(objects) == 0 {
		return action
	}
	return action * objSum
}

// CombineSeq implements F: the sum of clip scores.
func (Additive) CombineSeq(clipScores []float64) float64 {
	s := 0.0
	for _, v := range clipScores {
		s += v
	}
	return s
}

// Merge implements the ⊙ operator: addition.
func (Additive) Merge(a, b float64) float64 { return a + b }

// MergeN implements F: n·s.
func (Additive) MergeN(s float64, n int) float64 { return s * float64(n) }

// Zero implements F.
func (Additive) Zero() float64 { return 0 }

// Default returns the additive scheme of §5.
func Default() Functions {
	a := Additive{}
	return Functions{H: a, G: a, F: a}
}

// MaxSeq is an alternative F: the sequence score is its best clip score
// (⊙ = max). It satisfies the §4.1 contract for non-negative clip
// scores and is exercised by property tests to show RVAQ's independence
// from the specific scheme.
type MaxSeq struct{}

// CombineSeq implements F.
func (MaxSeq) CombineSeq(clipScores []float64) float64 {
	best := 0.0
	for _, v := range clipScores {
		if v > best {
			best = v
		}
	}
	return best
}

// Merge implements the ⊙ operator: max.
func (MaxSeq) Merge(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MergeN implements F: s for any positive n.
func (MaxSeq) MergeN(s float64, n int) float64 {
	if n <= 0 {
		return 0
	}
	return s
}

// Zero implements F.
func (MaxSeq) Zero() float64 { return 0 }
