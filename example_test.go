package vaq_test

import (
	"fmt"
	"log"

	"vaq"
	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/video"
)

// exampleScene builds a tiny deterministic world: a "loading" action on
// clips 10..19 with a truck present throughout.
func exampleScene() (*detect.Scene, vaq.Geometry, int) {
	geom := vaq.DefaultGeometry()
	const nclips = 60
	meta := video.Meta{Name: "example", Frames: nclips * geom.ClipLen(), Geom: geom}
	truth := annot.NewVideo(meta)
	truth.AddAction("loading", interval.Set{{Lo: 50, Hi: 99}})  // shots → clips 10..19
	truth.AddObject("truck", interval.Set{{Lo: 450, Hi: 1049}}) // frames → clips 9..20
	return &detect.Scene{Truth: truth, Seed: 1}, geom, nclips
}

// ExampleParseQuery compiles one of the paper's SQL-like statements.
func ExampleParseQuery() {
	plan, err := vaq.ParseQuery(`
		SELECT MERGE(clipID) AS Sequence
		FROM (PROCESS cam PRODUCE clipID, obj USING ObjectDetector,
		      act USING ActionRecognizer)
		WHERE act = 'loading' AND obj.include('truck')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(plan)
	// Output:
	// plan(cam [act=loading] [obj:truck])
}

// ExampleNewStream runs an online SVAQD query end to end over a
// simulated stream with ideal models.
func ExampleNewStream() {
	scene, geom, nclips := exampleScene()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)

	plan, _ := vaq.ParseQuery(`
		SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID, obj, act)
		WHERE act = 'loading' AND obj.include('truck')`)
	stream, err := vaq.NewStream(plan, det, rec, geom, vaq.StreamConfig{
		Dynamic: true, HorizonClips: nclips,
	})
	if err != nil {
		log.Fatal(err)
	}
	seqs, err := stream.Run(nclips)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(seqs)
	// Output:
	// {[10,19]}
}

// ExampleWithSharedInference runs the same query twice through one
// SharedInference domain: the second stream's model invocations are all
// served from the shared score cache, so the backends are never called
// again.
func ExampleWithSharedInference() {
	scene, geom, nclips := exampleScene()
	var meter detect.CostMeter
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, &meter)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, &meter)

	si, err := vaq.NewSharedInference(vaq.SharedInferenceConfig{CacheCapacity: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	plan, _ := vaq.ParseQuery(`
		SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID, obj, act)
		WHERE act = 'loading' AND obj.include('truck')`)
	run := func() interval.Set {
		stream, err := vaq.NewStream(plan, det, rec, geom, vaq.StreamConfig{
			Dynamic: true, HorizonClips: nclips,
		}, vaq.WithSharedInference(si))
		if err != nil {
			log.Fatal(err)
		}
		seqs, err := stream.Run(nclips)
		if err != nil {
			log.Fatal(err)
		}
		return seqs
	}

	first := run()
	callsAfterFirst := meter.Calls()
	second := run()
	fmt.Println("sequences:", first)
	fmt.Println("same answer:", second.Equal(first))
	fmt.Println("backend calls added by second run:", meter.Calls()-callsAfterFirst)
	// Output:
	// sequences: {[10,19]}
	// same answer: true
	// backend calls added by second run: 0
}

// ExampleRepository_TopK ingests a video and answers an offline top-k
// query with RVAQ.
func ExampleRepository_TopK() {
	scene, _, _ := exampleScene()
	det := detect.NewSimObjectDetector(scene, detect.IdealObject, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.IdealAction, nil)
	vd, err := vaq.IngestVideo(det, rec, scene.Truth.Meta,
		scene.Truth.ObjectLabels(), scene.Truth.ActionLabels(), vaq.IngestConfig{})
	if err != nil {
		log.Fatal(err)
	}
	results, _, err := (&inMemoryRepo{vd: vd}).topK(
		vaq.Query{Action: "loading", Objects: []vaq.Label{"truck"}}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best sequence: clips %d..%d\n", results[0].Seq.Lo, results[0].Seq.Hi)
	// Output:
	// best sequence: clips 10..19
}

// inMemoryRepo keeps the example free of filesystem side effects.
type inMemoryRepo struct{ vd *vaq.VideoData }

func (r *inMemoryRepo) topK(q vaq.Query, k int) ([]vaq.TopKResult, vaq.TopKStats, error) {
	return vaq.TopKVideo(r.vd, q, k)
}
