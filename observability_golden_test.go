package vaq

import (
	"context"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"vaq/internal/brownout"
	"vaq/internal/detect"
	"vaq/internal/infer"
	"vaq/internal/resilience"
	"vaq/internal/rvaq"
	"vaq/internal/shard"
	"vaq/internal/trace"
)

// This golden test keeps docs/OBSERVABILITY.md's counter catalogue and
// the code in lockstep, in both directions: every counter any pipeline
// registers must have a catalogue row, and every catalogued name must
// still be registered by some code path. It works because counters
// register at construction (trace.Tracer.Counter is a LoadOrStore, so
// a registered-but-never-incremented counter still appears in the
// Counters() snapshot at value 0) — exercising each subsystem once with
// a tracer attached materialises its whole counter family.

var backtickRE = regexp.MustCompile("`([^`]+)`")

// catalogueCounters parses the "## Counter catalogue" table and returns
// the backticked names from its first column. Rows may list several
// names in one cell (`a`, `b`); the per-backend fault counters appear
// as the single pattern token `resilience.faults.<backend>`.
func catalogueCounters(t *testing.T) map[string]bool {
	t.Helper()
	raw, err := os.ReadFile("docs/OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	in := false
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(line, "## ") {
			in = strings.HasPrefix(line, "## Counter catalogue")
			continue
		}
		if !in || !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(line, "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range backtickRE.FindAllStringSubmatch(cells[1], -1) {
			names[m[1]] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no counters parsed from docs/OBSERVABILITY.md's catalogue table")
	}
	return names
}

func TestCounterCatalogueGolden(t *testing.T) {
	want := catalogueCounters(t)
	tr := trace.New()

	// Online engine: detect.* and svaq.clips register at AttachTrace.
	qs, det, rec := streamWorld(t, 0.1)
	meta := qs.World.Truth.Meta
	s, err := NewStreamQuery(qs.Query, det, rec, meta.Geom, StreamConfig{HorizonClips: meta.Clips()})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachTrace(tr, 0)
	if _, err := s.Run(meta.Clips()); err != nil {
		t.Fatal(err)
	}

	// Ingestion: ingest.* register from the context tracer.
	ctx := trace.NewContext(context.Background(), tr)
	truth := qs.World.Truth
	vd, err := IngestVideoCtx(ctx, det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Shared inference and resilience register their whole families at
	// construction when handed a tracer — no traffic needed.
	sh := infer.MustNew(infer.Config{Tracer: tr, CacheCapacity: 64})
	_ = resilience.WrapFallible(
		sh.Object(detect.AsFallibleObject(det)),
		sh.Action(detect.AsFallibleAction(rec)),
		resilience.DefaultPolicy(), resilience.Options{Tracer: tr})

	// The brownout ladder registers its family at construction too.
	if _, err := brownout.New(brownout.Config{High: time.Second},
		brownout.Options{Tracer: tr}); err != nil {
		t.Fatal(err)
	}

	// The scatter-gather coordinator registers the shard.* family at
	// construction; the backend is never dialled.
	if _, err := shard.New(shard.Config{
		Backends: []shard.Backend{{Name: "s0", Addr: "127.0.0.1:1"}},
		Tracer:   tr,
	}); err != nil {
		t.Fatal(err)
	}

	// Offline top-k registers the rvaq.* family.
	if _, _, err := rvaq.TopKCtx(ctx, vd, qs.Query, 3, rvaq.DefaultOptions()); err != nil {
		t.Fatal(err)
	}

	// rvaq.partial_results registers only on the deadline-partial
	// branch: run again under an already-expired deadline.
	dctx, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	popts := rvaq.DefaultOptions()
	popts.Partial = true
	if _, stats, err := rvaq.TopKCtx(dctx, vd, qs.Query, 3, popts); err != nil || !stats.Incomplete {
		t.Fatalf("expired-deadline partial run: incomplete=%v err=%v", stats.Incomplete, err)
	}

	got := map[string]bool{}
	for name := range tr.Counters() {
		if strings.HasPrefix(name, "resilience.faults.") {
			name = "resilience.faults.<backend>"
		}
		got[name] = true
	}
	for name := range got {
		if !want[name] {
			t.Errorf("counter %q is registered by the code but missing from docs/OBSERVABILITY.md's catalogue", name)
		}
	}
	for name := range want {
		if !got[name] {
			t.Errorf("docs/OBSERVABILITY.md catalogues %q but this test registered no such counter", name)
		}
	}
}
