package vaq

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/synth"
)

// multiRepo builds a repository of n distinct synthetic videos that all
// carry the q2 labels (blowing_leaves; car, plant), so one query has
// candidates in every video. Each video is the q2 world regenerated
// under a different seed.
func multiRepo(tb testing.TB, n int, scale float64) (*Repository, Query) {
	tb.Helper()
	spec, q, err := synth.YouTubeSpec("q2", DefaultGeometry())
	if err != nil {
		tb.Fatal(err)
	}
	spec = spec.Scaled(scale)
	repo, err := OpenRepository(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		s := spec
		s.Name = fmt.Sprintf("v%02d", i)
		s.Seed = spec.Seed + int64(1+97*i)
		w, err := synth.Generate(s)
		if err != nil {
			tb.Fatal(err)
		}
		scene := w.Scene()
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		vd, err := IngestVideo(det, rec, w.Truth.Meta, w.Truth.ObjectLabels(), w.Truth.ActionLabels(), IngestConfig{})
		if err != nil {
			tb.Fatal(err)
		}
		if err := repo.Add(s.Name, vd); err != nil {
			tb.Fatal(err)
		}
	}
	return repo, q
}

func sameResults(tb testing.TB, label string, want, got []VideoTopKResult, tol float64) {
	tb.Helper()
	if len(want) != len(got) {
		tb.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Video != g.Video || w.Seq != g.Seq {
			tb.Fatalf("%s: rank %d = %s %v, want %s %v", label, i, g.Video, g.Seq, w.Video, w.Seq)
		}
		if math.Abs(w.Score-g.Score) > tol {
			tb.Fatalf("%s: rank %d score %v, want %v", label, i, g.Score, w.Score)
		}
	}
}

// TestTopKAllParallelMatchesSequential asserts the fan-out path is a
// pure performance change: per-video runs are independent, so any
// worker count must reproduce the 1-worker ranking bit for bit.
func TestTopKAllParallelMatchesSequential(t *testing.T) {
	repo, q := multiRepo(t, 3, 0.12)
	for _, k := range []int{1, 4, 9} {
		seq, seqStats, err := repo.TopKAllOpts(q, k, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) == 0 {
			t.Fatalf("k=%d: no sequential results", k)
		}
		for _, workers := range []int{2, 4} {
			par, parStats, err := repo.TopKAllOpts(q, k, ExecOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("k=%d workers=%d", k, workers), seq, par, 0)
			if par := parStats.Candidates; par != seqStats.Candidates {
				t.Fatalf("k=%d workers=%d: %d candidates, want %d", k, workers, par, seqStats.Candidates)
			}
		}
		// A shared pool (the daemon's configuration) changes nothing.
		p := NewWorkerPool(3)
		pooled, _, err := repo.TopKAllOpts(q, k, ExecOptions{Pool: p})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("k=%d pooled", k), seq, pooled, 0)
		if p.InUse() != 0 {
			t.Fatalf("k=%d: %d pool slots leaked", k, p.InUse())
		}
	}
}

// TestTopKAllMoviesParallelMatchesSequential repeats the identity check
// on the Table 2 movie workloads: two movies ingested with a shared
// label universe, queried with the first movie's query.
func TestTopKAllMoviesParallelMatchesSequential(t *testing.T) {
	repo, err := OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var q Query
	for i, name := range []string{"coffee_and_cigarettes", "iron_man"} {
		qs, err := synth.MovieScaled(name, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			q = qs.Query
		}
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		truth := qs.World.Truth
		objs := append(truth.ObjectLabels(), q.Objects...)
		acts := append(truth.ActionLabels(), q.Action)
		vd, err := IngestVideo(det, rec, truth.Meta, dedupLabels(objs), dedupLabels(acts), IngestConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Add(name, vd); err != nil {
			t.Fatal(err)
		}
	}
	seq, _, err := repo.TopKAllOpts(q, 5, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("no sequential results")
	}
	par, _, err := repo.TopKAllOpts(q, 5, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "movies", seq, par, 0)
	merged, _, err := repo.TopKGlobalOpts(q, 5, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sharded, _, err := repo.TopKGlobalOpts(q, 5, ExecOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "movies-global", merged, sharded, 1e-9)
}

func dedupLabels(ls []Label) []Label {
	seen := make(map[Label]bool, len(ls))
	out := ls[:0]
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// TestTopKGlobalShardedMatchesMerged pits the parallel sharded path
// (per-video iterators exchanging B_lo^K) against the sequential
// merged-namespace reference. The exchange only prunes sequences whose
// upper bound lies strictly below a proven global lower bound, so the
// rankings must coincide.
func TestTopKGlobalShardedMatchesMerged(t *testing.T) {
	repo, q := multiRepo(t, 3, 0.12)
	for _, k := range []int{1, 4, 9} {
		merged, mergedStats, err := repo.TopKGlobalOpts(q, k, ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(merged) == 0 {
			t.Fatalf("k=%d: no merged results", k)
		}
		sharded, shardedStats, err := repo.TopKGlobalOpts(q, k, ExecOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("k=%d", k), merged, sharded, 1e-9)
		if mergedStats.Candidates == 0 || shardedStats.Candidates == 0 {
			t.Fatalf("k=%d: empty stats %+v %+v", k, mergedStats, shardedStats)
		}
	}
}

// TestTopKGlobalStaleNames is the regression test for the discarded
// Video() ok: a names snapshot can go stale when a concurrent Remove
// wins the race, and both global paths must fail with ErrVideoNotFound
// instead of handing a nil *VideoData to the merge layer.
func TestTopKGlobalStaleNames(t *testing.T) {
	repo, q := multiRepo(t, 2, 0.05)
	stale := append(repo.Videos(), "zz-removed")
	if _, _, err := repo.topKGlobalMerged(stale, q, 3, ExecOptions{}); !errors.Is(err, ErrVideoNotFound) {
		t.Fatalf("merged path with stale names: err = %v, want ErrVideoNotFound", err)
	}
	if _, _, err := repo.topKGlobalSharded(stale, q, 3, ExecOptions{Workers: 4}); !errors.Is(err, ErrVideoNotFound) {
		t.Fatalf("sharded path with stale names: err = %v, want ErrVideoNotFound", err)
	}
	if _, _, err := repo.TopKOpts("zz-removed", q, 3, ExecOptions{}); !errors.Is(err, ErrVideoNotFound) {
		t.Fatalf("TopKOpts on unknown video: err = %v, want ErrVideoNotFound", err)
	}
}

// TestSortVideoResultsDeterministic asserts the merge order that
// replaced the insertion sort: score descending, ties broken by video
// name then sequence start — the order the merged clip-id namespace
// induces.
func TestSortVideoResultsDeterministic(t *testing.T) {
	mk := func(video string, lo int, score float64) VideoTopKResult {
		return VideoTopKResult{Video: video, TopKResult: TopKResult{Seq: interval.Interval{Lo: lo, Hi: lo + 3}, Score: score}}
	}
	all := []VideoTopKResult{
		mk("v02", 10, 0.5), mk("v00", 40, 0.5), mk("v01", 7, 0.9),
		mk("v00", 5, 0.5), mk("v00", 5, 0.7), mk("v02", 2, 0.9),
	}
	want := []VideoTopKResult{
		mk("v01", 7, 0.9), mk("v02", 2, 0.9), mk("v00", 5, 0.7),
		mk("v00", 5, 0.5), mk("v00", 40, 0.5), mk("v02", 10, 0.5),
	}
	// Any starting permutation must land on the same order.
	for shift := 0; shift < len(all); shift++ {
		perm := append(append([]VideoTopKResult{}, all[shift:]...), all[:shift]...)
		sortVideoResults(perm)
		for i := range want {
			if perm[i] != want[i] {
				t.Fatalf("shift %d rank %d = %+v, want %+v", shift, i, perm[i], want[i])
			}
		}
	}
}

// TestTopKCancellation: a cancelled context aborts the fan-out paths
// between iterations.
func TestTopKCancellation(t *testing.T) {
	repo, q := multiRepo(t, 2, 0.05)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := repo.TopKAllOpts(q, 3, ExecOptions{Ctx: ctx, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKAllOpts: err = %v, want context.Canceled", err)
	}
	if _, _, err := repo.TopKGlobalOpts(q, 3, ExecOptions{Ctx: ctx, Workers: 2}); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKGlobalOpts: err = %v, want context.Canceled", err)
	}
	if _, _, err := repo.TopKOpts(repo.Videos()[0], q, 3, ExecOptions{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKOpts: err = %v, want context.Canceled", err)
	}
}

// TestTopKAllStatsClocks: the aggregate stats separate the wall clock
// of the parallel region (Runtime) from the summed per-video runtimes
// (CPURuntime); their ratio is the effective speedup.
func TestTopKAllStatsClocks(t *testing.T) {
	repo, q := multiRepo(t, 3, 0.08)
	_, stats, err := repo.TopKAllOpts(q, 5, ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runtime <= 0 || stats.CPURuntime <= 0 {
		t.Fatalf("clocks not populated: %+v", stats)
	}
}

// BenchmarkTopKAllWorkers sweeps the repository fan-out; on a
// multi-core machine the ns/op ratio between workers=1 and workers=4 is
// the offline speedup (the CI bench smoke step compiles and runs it
// once per configuration).
func BenchmarkTopKAllWorkers(b *testing.B) {
	repo, q := multiRepo(b, 4, 0.25)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := repo.TopKAllOpts(q, 5, ExecOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTopKGlobalWorkers compares the merged-namespace sequential
// run against the sharded parallel run with the cross-shard bound
// exchange.
func BenchmarkTopKGlobalWorkers(b *testing.B) {
	repo, q := multiRepo(b, 4, 0.25)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := repo.TopKGlobalOpts(q, 5, ExecOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
