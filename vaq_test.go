package vaq

import (
	"testing"

	"vaq/internal/detect"
	"vaq/internal/metrics"
	"vaq/internal/synth"
)

func quickWorld(t *testing.T) (*synth.QuerySet, ObjectDetector, ActionRecognizer) {
	t.Helper()
	qs, err := synth.YouTubeScaled("q2", DefaultGeometry(), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	scene := qs.World.Scene()
	return qs,
		detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil),
		detect.NewSimActionRecognizer(scene, detect.I3D, nil)
}

func TestParseQueryAndStream(t *testing.T) {
	qs, det, rec := quickWorld(t)
	plan, err := ParseQuery(`
		SELECT MERGE(clipID) AS Sequence
		FROM (PROCESS cam PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
		WHERE act = 'blowing_leaves' AND obj.include('car')`)
	if err != nil {
		t.Fatal(err)
	}
	meta := qs.World.Truth.Meta
	stream, err := NewStream(plan, det, rec, meta.Geom, StreamConfig{Dynamic: true, HorizonClips: meta.Clips()})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Engine() == nil {
		t.Fatal("conjunctive plan should use the simple engine")
	}
	seqs, err := stream.Run(meta.Clips())
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Action: "blowing_leaves", Objects: []Label{"car"}}
	truth, err := qs.World.Truth.GroundTruthClips(q)
	if err != nil {
		t.Fatal(err)
	}
	if f1 := metrics.SequenceF1(seqs, truth, 0.5).F1; f1 < 0.6 {
		t.Fatalf("facade stream F1 = %v", f1)
	}
	if !stream.Results().Equal(seqs) {
		t.Fatal("Results disagrees with Run")
	}
}

func TestCNFPlanUsesCNFEngine(t *testing.T) {
	qs, det, rec := quickWorld(t)
	plan, err := ParseQuery(`
		SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID, obj, act)
		WHERE act = 'blowing_leaves' OR obj.include('car')`)
	if err != nil {
		t.Fatal(err)
	}
	meta := qs.World.Truth.Meta
	stream, err := NewStream(plan, det, rec, meta.Geom, StreamConfig{HorizonClips: meta.Clips()})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Engine() != nil {
		t.Fatal("disjunctive plan should use the CNF engine")
	}
	if _, err := stream.ProcessClip(0); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Run(50); err != nil {
		t.Fatal(err)
	}
}

func TestNewStreamValidation(t *testing.T) {
	_, det, rec := quickWorld(t)
	if _, err := NewStream(nil, det, rec, DefaultGeometry(), StreamConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := NewStreamQuery(Query{}, det, rec, DefaultGeometry(), StreamConfig{}); err == nil {
		t.Error("empty query accepted")
	}
}

func TestRepositoryFacadeEndToEnd(t *testing.T) {
	qs, det, rec := quickWorld(t)
	truth := qs.World.Truth
	vd, err := IngestVideo(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("v1", vd); err != nil {
		t.Fatal(err)
	}
	if got := repo.Videos(); len(got) != 1 || got[0] != "v1" {
		t.Fatalf("Videos = %v", got)
	}
	q := Query{Action: "blowing_leaves", Objects: []Label{"car"}}
	results, stats, err := repo.TopK("v1", q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || stats.Candidates == 0 {
		t.Fatalf("no results: %v %+v", results, stats)
	}
	if _, _, err := repo.TopK("ghost", q, 3); err == nil {
		t.Error("unknown video accepted")
	}
	all, _, err := repo.TopKAll(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || all[0].Video != "v1" {
		t.Fatalf("TopKAll = %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Score > all[i-1].Score {
			t.Fatal("TopKAll not sorted")
		}
	}
	if err := repo.Remove("v1"); err != nil {
		t.Fatal(err)
	}
	if len(repo.Videos()) != 0 {
		t.Fatal("remove failed")
	}
}

func TestTopKGlobalMatchesPerVideoMerge(t *testing.T) {
	qs, det, rec := quickWorld(t)
	truth := qs.World.Truth
	vd, err := IngestVideo(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("v1", vd); err != nil {
		t.Fatal(err)
	}
	// A second, distinct video.
	qs2, err := synth.YouTubeScaled("q1", DefaultGeometry(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	scene2 := qs2.World.Scene()
	det2 := detect.NewSimObjectDetector(scene2, detect.MaskRCNN, nil)
	rec2 := detect.NewSimActionRecognizer(scene2, detect.I3D, nil)
	truth2 := qs2.World.Truth
	// Give both videos the "car" and "blowing_leaves" labels: v2 simply
	// has no blowing_leaves episodes, so all matches come from v1.
	vd2, err := IngestVideo(det2, rec2, truth2.Meta,
		append(truth2.ObjectLabels(), "car"), append(truth2.ActionLabels(), "blowing_leaves"), IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("v2", vd2); err != nil {
		t.Fatal(err)
	}

	q := Query{Action: "blowing_leaves", Objects: []Label{"car"}}
	global, _, err := repo.TopKGlobal(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	perVideo, _, err := repo.TopKAll(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(global) != len(perVideo) {
		t.Fatalf("lengths differ: %d vs %d", len(global), len(perVideo))
	}
	for i := range global {
		g, p := global[i], perVideo[i]
		if g.Video != p.Video || g.Seq != p.Seq {
			t.Fatalf("rank %d: global %s %v vs per-video %s %v", i, g.Video, g.Seq, p.Video, p.Seq)
		}
		if diff := g.Score - p.Score; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("rank %d: scores differ: %v vs %v", i, g.Score, p.Score)
		}
	}
}
