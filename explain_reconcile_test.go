package vaq

import (
	"testing"
	"time"

	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/fault"
	"vaq/internal/infer"
	"vaq/internal/resilience"
	"vaq/internal/synth"
)

// These tests pin the EXPLAIN exactness contract: a profile's
// engine-attributed invocation layers (dense_eval + plan_probe +
// densify) must equal the engine's own Invocations() to the unit, the
// clip decision sources must sum to the clips processed, and the
// backend-side layers (retry, hedge, batch_flush) must mirror the
// resilience/infer deltas without leaking into the engine invariant —
// across dense, planned, CNF, faulted, hedged and cached runs.

// reconcile asserts the two engine-side invariants on a finished
// stream + collector pair.
func reconcile(t *testing.T, name string, s *Stream, ex *ExplainCollector) ExplainProfile {
	t.Helper()
	p := ex.Profile()
	if got, want := p.EngineInvocations(), int64(s.Invocations()); got != want {
		t.Errorf("%s: attributed engine invocations = %d, engine counted %d", name, got, want)
	}
	var clips int64
	for _, n := range p.Clips {
		clips += n
	}
	if got, want := clips, int64(s.ClipsProcessed()); got != want {
		t.Errorf("%s: attributed clips = %d, processed %d", name, got, want)
	}
	return p
}

// streamWorld loads the q2 workload at the given scale with fresh sim
// detectors.
func streamWorld(t *testing.T, scale float64) (*synth.QuerySet, ObjectDetector, ActionRecognizer) {
	t.Helper()
	qs, err := synth.YouTubeScaled("q2", DefaultGeometry(), scale)
	if err != nil {
		t.Fatal(err)
	}
	scene := qs.World.Scene()
	return qs,
		detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil),
		detect.NewSimActionRecognizer(scene, detect.I3D, nil)
}

func TestExplainReconcilesOnline(t *testing.T) {
	cases := []struct {
		name string
		cfg  StreamConfig
		// check inspects the profile beyond the shared invariants.
		check func(t *testing.T, p ExplainProfile)
	}{
		{
			name: "dense",
			cfg:  StreamConfig{Dynamic: true},
			check: func(t *testing.T, p ExplainProfile) {
				if p.Invocations[explain.LayerProbe] != 0 || p.Invocations[explain.LayerDensify] != 0 {
					t.Errorf("dense run attributed planner layers: %v", p.Invocations)
				}
				if p.Plan != nil {
					t.Error("dense run opened a plan section")
				}
				if p.Clips[explain.ClipPlanAccept] != 0 || p.Clips[explain.ClipPlanPrune] != 0 {
					t.Errorf("dense run attributed planner clip outcomes: %v", p.Clips)
				}
			},
		},
		{
			name: "planned",
			cfg:  StreamConfig{Dynamic: true, Plan: PlanConfig{Rate: 4}},
			check: func(t *testing.T, p ExplainProfile) {
				if p.Invocations[explain.LayerProbe] == 0 {
					t.Errorf("planned run attributed no probe units: %v", p.Invocations)
				}
				if p.Plan == nil {
					t.Fatal("planned run has no plan section")
				}
				if p.Plan.Units != p.Invocations[explain.LayerProbe]+p.Invocations[explain.LayerDensify] {
					t.Errorf("plan units %d != probe %d + densify %d",
						p.Plan.Units, p.Invocations[explain.LayerProbe], p.Invocations[explain.LayerDensify])
				}
				if len(p.Plan.Reasons) == 0 {
					t.Error("planned run recorded no Decide reasons")
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			qs, det, rec := streamWorld(t, 0.2)
			meta := qs.World.Truth.Meta
			cfg := tc.cfg
			cfg.HorizonClips = meta.Clips()
			s, err := NewStreamQuery(qs.Query, det, rec, meta.Geom, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ex := NewExplainCollector("online")
			s.AttachExplain(ex)
			if _, err := s.Run(meta.Clips()); err != nil {
				t.Fatal(err)
			}
			p := reconcile(t, tc.name, s, ex)
			tc.check(t, p)
		})
	}
}

func TestExplainReconcilesCNF(t *testing.T) {
	qs, det, rec := streamWorld(t, 0.2)
	plan, err := ParseQuery(`
		SELECT MERGE(clipID) FROM (PROCESS cam PRODUCE clipID, obj, act)
		WHERE act = 'blowing_leaves' OR obj.include('car')`)
	if err != nil {
		t.Fatal(err)
	}
	meta := qs.World.Truth.Meta
	s, err := NewStream(plan, det, rec, meta.Geom, StreamConfig{HorizonClips: meta.Clips()})
	if err != nil {
		t.Fatal(err)
	}
	if s.Engine() != nil {
		t.Fatal("disjunctive plan should use the CNF engine")
	}
	ex := NewExplainCollector("online")
	s.AttachExplain(ex)
	if _, err := s.Run(meta.Clips()); err != nil {
		t.Fatal(err)
	}
	p := reconcile(t, "cnf", s, ex)
	if len(p.Predicates) != 2 {
		t.Fatalf("CNF profile predicates = %d, want 2: %+v", len(p.Predicates), p.Predicates)
	}
}

// TestExplainReconcilesFaulted runs the engine through the resilience
// layer under an error burst: the engine invariant must hold on the
// engine's own units while the retry layer mirrors the resilience
// delta exactly — degraded units never distort engine accounting.
func TestExplainReconcilesFaulted(t *testing.T) {
	qs, det, rec := streamWorld(t, 0.15)
	sched, err := fault.Parse(11, "error:0-999:0.5")
	if err != nil {
		t.Fatal(err)
	}
	fdet := fault.NewObject(detect.AsFallibleObject(det), sched)
	frec := fault.NewAction(detect.AsFallibleAction(rec), sched)
	pol := resilience.Policy{
		MaxRetries:  1,
		BaseBackoff: 10 * time.Microsecond,
		MaxBackoff:  50 * time.Microsecond,
		Seed:        3,
	}
	models := resilience.WrapFallible(fdet, frec, pol, resilience.Options{})

	meta := qs.World.Truth.Meta
	s, err := NewStreamQuery(qs.Query, models.Det, models.Rec, meta.Geom,
		StreamConfig{Dynamic: true, HorizonClips: meta.Clips()})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplainCollector("online")
	s.AttachExplain(ex)
	start := models.Stats()
	if _, err := s.Run(meta.Clips()); err != nil {
		t.Fatal(err)
	}
	delta := models.Stats()
	if delta.Retries <= start.Retries {
		t.Fatal("fault burst produced no retries; the schedule is not engaged")
	}
	ex.SetResilience(explain.ResilienceProfile{
		Retries:       delta.Retries - start.Retries,
		Hedges:        delta.Hedges - start.Hedges,
		Fallbacks:     delta.Fallbacks - start.Fallbacks,
		DegradedUnits: delta.DegradedUnits - start.DegradedUnits,
	})
	p := reconcile(t, "faulted", s, ex)
	if got, want := p.Invocations[explain.LayerRetry], delta.Retries-start.Retries; got != want {
		t.Errorf("retry layer = %d, resilience delta %d", got, want)
	}
	if p.Resilience == nil || p.Resilience.Fallbacks == 0 {
		t.Errorf("50%% error burst with one retry should degrade some units: %+v", p.Resilience)
	}
}

// TestExplainReconcilesHedged arms hedging over a latency-episode
// schedule: hedge replicas land in their own layer, outside the engine
// invariant.
func TestExplainReconcilesHedged(t *testing.T) {
	qs, det, rec := streamWorld(t, 0.15)
	sched, err := fault.Parse(5, "latency:0-:0.05:1ms")
	if err != nil {
		t.Fatal(err)
	}
	fdet := fault.NewObject(detect.AsFallibleObject(det), sched)
	pol := resilience.Policy{
		Seed:            5,
		HedgeQuantile:   0.9,
		HedgeMinSamples: 20,
	}
	models := resilience.WrapFallible(fdet, detect.AsFallibleAction(rec), pol, resilience.Options{})

	meta := qs.World.Truth.Meta
	s, err := NewStreamQuery(qs.Query, models.Det, models.Rec, meta.Geom,
		StreamConfig{Dynamic: true, HorizonClips: meta.Clips()})
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplainCollector("online")
	s.AttachExplain(ex)
	if _, err := s.Run(meta.Clips()); err != nil {
		t.Fatal(err)
	}
	st := models.Stats()
	if st.Hedges == 0 {
		t.Fatal("latency episodes armed no hedges; HedgeQuantile is not engaged")
	}
	ex.SetResilience(explain.ResilienceProfile{Hedges: st.Hedges, HedgeWins: st.HedgeWins})
	p := reconcile(t, "hedged", s, ex)
	if got := p.Invocations[explain.LayerHedge]; got != st.Hedges {
		t.Errorf("hedge layer = %d, resilience counted %d", got, st.Hedges)
	}
}

// TestExplainReconcilesCached runs two streams through one shared-
// inference domain: the second stream's delta shows the cache serving
// units, while its engine invariant is untouched (the cache sits below
// the engine's invocation accounting).
func TestExplainReconcilesCached(t *testing.T) {
	qs, det, rec := streamWorld(t, 0.15)
	sh := infer.MustNew(infer.Config{CacheCapacity: 1 << 16})
	wrap := func() *resilience.Models {
		return resilience.WrapFallible(
			sh.Object(detect.AsFallibleObject(det)),
			sh.Action(detect.AsFallibleAction(rec)),
			resilience.DefaultPolicy(), resilience.Options{})
	}
	meta := qs.World.Truth.Meta
	runOne := func(name string) ExplainProfile {
		m := wrap()
		s, err := NewStreamQuery(qs.Query, m.Det, m.Rec, meta.Geom,
			StreamConfig{Dynamic: true, HorizonClips: meta.Clips()})
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExplainCollector("online")
		s.AttachExplain(ex)
		start := sh.Stats()
		if _, err := s.Run(meta.Clips()); err != nil {
			t.Fatal(err)
		}
		end := sh.Stats()
		ex.SetInfer(explain.InferProfile{
			CacheHits:   end.CacheHits - start.CacheHits,
			CacheMisses: end.CacheMisses - start.CacheMisses,
		})
		return reconcile(t, name, s, ex)
	}
	first := runOne("cached-first")
	if first.Infer.CacheHits != 0 {
		t.Errorf("first run hit a cold cache %d times", first.Infer.CacheHits)
	}
	second := runOne("cached-second")
	if second.Infer.CacheHits == 0 {
		t.Error("second identical run saw no cache hits; the shared cache is not engaged")
	}
	if first.EngineInvocations() != second.EngineInvocations() {
		t.Errorf("cache hits changed engine accounting: %d vs %d",
			first.EngineInvocations(), second.EngineInvocations())
	}
}

// TestExplainReconcilesTopK pins the offline section against the
// engine's own TopKStats.
func TestExplainReconcilesTopK(t *testing.T) {
	qs, det, rec := streamWorld(t, 0.2)
	truth := qs.World.Truth
	vd, err := IngestVideo(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	repo, err := OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("q2", vd); err != nil {
		t.Fatal(err)
	}
	q := qs.Query
	ex := NewExplainCollector("topk")
	_, stats, err := repo.TopKOpts("q2", q, 5, ExecOptions{Explain: ex})
	if err != nil {
		t.Fatal(err)
	}
	tk := ex.Profile().TopK
	if tk == nil {
		t.Fatal("topk run produced no topk section")
	}
	if tk.K != 5 {
		t.Errorf("k = %d, want 5", tk.K)
	}
	if tk.Candidates != stats.Candidates {
		t.Errorf("candidates = %d, stats %d", tk.Candidates, stats.Candidates)
	}
	if tk.Iterations != stats.Iterations {
		t.Errorf("iterations = %d, stats %d", tk.Iterations, stats.Iterations)
	}
	if tk.RandomAccesses != stats.Accesses.Random {
		t.Errorf("random accesses = %d, stats %d", tk.RandomAccesses, stats.Accesses.Random)
	}
	if got, want := tk.SortedAccesses, stats.Accesses.Sorted+stats.Accesses.Reverse; got != want {
		t.Errorf("sorted accesses = %d, stats %d", got, want)
	}
	if len(tk.Trajectory) == 0 || len(tk.Trajectory) != stats.Iterations {
		t.Errorf("trajectory points = %d, iterations %d", len(tk.Trajectory), stats.Iterations)
	}
}
