// Command vaqingest builds an on-disk repository from synthetic videos:
// the one-time ingestion phase of §4.2 (clip score tables + individual
// sequences for every supported label), ready for ad-hoc top-k queries
// with vaqtopk or the vaq library.
//
//	vaqingest -dir /tmp/repo -videos coffee_and_cigarettes,iron_man
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/infer"
	"vaq/internal/resilience"
	"vaq/internal/synth"
)

func main() {
	var (
		dirFlag     = flag.String("dir", "vaq-repo", "repository directory")
		videosFlag  = flag.String("videos", "coffee_and_cigarettes,iron_man,star_wars_3,titanic", "comma-separated movie names (Table 2)")
		scaleFlag   = flag.Float64("scale", 1.0, "workload scale")
		workersFlag = flag.Int("workers", 0, "parallel clip scorers per video (0 = NumCPU, 1 = serial)")
		faultFlag   = flag.String("fault", "", "deterministic fault schedule for the ingest detectors, e.g. 'error:0-999:0.1,latency:500-:0.2:20ms'")
		seedFlag    = flag.Int64("fault-seed", 1, "seed for the fault schedule and resilience jitter")
		batchWFlag  = flag.Duration("batch-window", 0, "micro-batch same-label detector calls arriving within this window into one vectorized call (0 = off)")
		batchNFlag  = flag.Int("batch-max", infer.DefaultBatchMax, "max units per micro-batched detector call")
		planRFlag   = flag.Int("plan-rate", 0, "adaptive sampling base rate: score 1 unit in N per clip, densifying only undecided labels (0 = dense, 1 = planner with the dense rung)")
		planLFlag   = flag.Int("plan-levels", 0, "cap on the densification ladder length (0 = full ladder down to stride 1)")
	)
	flag.Parse()
	workers := *workersFlag
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	// Sizing bugs die at flag parsing, not as a late construction panic.
	if *batchNFlag <= 0 {
		fatal(fmt.Errorf("-batch-max must be positive, got %d", *batchNFlag))
	}
	if *batchWFlag < 0 {
		fatal(fmt.Errorf("-batch-window must be non-negative, got %v", *batchWFlag))
	}
	planCfg := vaq.PlanConfig{Rate: *planRFlag, Levels: *planLFlag}
	if err := planCfg.Validate(); err != nil {
		fatal(err)
	}
	if planCfg.Enabled() {
		fmt.Printf("vaqingest: adaptive sampling planner armed: rate %d, levels %d (sequential ingest)\n", *planRFlag, *planLFlag)
	}
	var sched fault.Schedule
	if *faultFlag != "" {
		var err error
		if sched, err = fault.Parse(*seedFlag, *faultFlag); err != nil {
			fatal(err)
		}
		fmt.Printf("vaqingest: fault injection armed: %s\n", sched)
	}

	repo, err := vaq.OpenRepository(*dirFlag)
	if err != nil {
		fatal(err)
	}
	for _, name := range strings.Split(*videosFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		start := time.Now()
		qs, err := synth.MovieScaled(name, *scaleFlag)
		if err != nil {
			fatal(err)
		}
		// The offline path consumes detectors through the resilience
		// wrapper exactly like the serving path: faults (injected here
		// only when -fault is set) are retried and, past the budget,
		// degraded to the prior with the affected units counted.
		scene := qs.World.Scene()
		var det detect.ObjectDetector = detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		var rec detect.ActionRecognizer = detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		fdet, frec := detect.AsFallibleObject(det), detect.AsFallibleAction(rec)
		// Micro-batching slots in below the fault injector so the injected
		// draws (and therefore the degraded-unit set) are byte-identical
		// with batching on or off. Batch results match per-unit calls, so
		// the repository bytes don't change either — only the call count.
		var sh *infer.Shared
		if *batchWFlag > 0 {
			// The flags were validated above, so construction cannot fail.
			sh = infer.MustNew(infer.Config{BatchWindow: *batchWFlag, BatchMax: *batchNFlag})
			fdet, frec = sh.Object(fdet), sh.Action(frec)
		}
		if !sched.Empty() {
			fdet = fault.NewObject(fdet, sched)
			frec = fault.NewAction(frec, sched)
		}
		pol := resilience.DefaultPolicy()
		pol.Seed = *seedFlag
		models := resilience.WrapFallible(fdet, frec, pol, resilience.Options{})
		det, rec = models.Det, models.Rec
		truth := qs.World.Truth
		vd, err := vaq.IngestVideo(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(),
			vaq.IngestConfig{Workers: workers, Plan: planCfg})
		if err != nil {
			fatal(fmt.Errorf("ingest %s: %w", name, err))
		}
		// Degraded units persist with the video, hop-by-hop: vaqtopk and
		// /v1/topk can then flag sequences built on them and discount each
		// clip by the fallback hop that actually served it.
		vd.SetDegradedFrames(models.Det.DegradedHops())
		vd.SetDegradedShots(models.Rec.DegradedHops())
		if err := repo.Add(name, vd); err != nil {
			fatal(err)
		}
		degraded := ""
		if st := models.Stats(); st.Fallbacks > 0 {
			degraded = fmt.Sprintf(" [DEGRADED: %d frames + %d shots via fallback, %d retries]",
				len(vd.DegradedFrames), len(vd.DegradedShots), st.Retries)
		}
		batched := ""
		if sh != nil {
			if st := sh.Stats(); st.Batches > 0 {
				batched = fmt.Sprintf(" [batched: %d units in %d calls]", st.BatchedUnits, st.Batches)
			}
		}
		fmt.Printf("ingested %s: %d clips, %d object tables, %d action tables, %d tracks (%v)%s%s\n",
			name, truth.Meta.Clips(), len(vd.ObjTables), len(vd.ActTables),
			vd.TracksOpened, time.Since(start).Round(time.Millisecond), degraded, batched)
	}
	fmt.Printf("repository %s now holds: %v\n", *dirFlag, repo.Videos())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqingest:", err)
	os.Exit(1)
}
