// Command vaqingest builds an on-disk repository from synthetic videos:
// the one-time ingestion phase of §4.2 (clip score tables + individual
// sequences for every supported label), ready for ad-hoc top-k queries
// with vaqtopk or the vaq library.
//
//	vaqingest -dir /tmp/repo -videos coffee_and_cigarettes,iron_man
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/synth"
)

func main() {
	var (
		dirFlag     = flag.String("dir", "vaq-repo", "repository directory")
		videosFlag  = flag.String("videos", "coffee_and_cigarettes,iron_man,star_wars_3,titanic", "comma-separated movie names (Table 2)")
		scaleFlag   = flag.Float64("scale", 1.0, "workload scale")
		workersFlag = flag.Int("workers", 0, "parallel clip scorers per video (0 = NumCPU, 1 = serial)")
	)
	flag.Parse()
	workers := *workersFlag
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	repo, err := vaq.OpenRepository(*dirFlag)
	if err != nil {
		fatal(err)
	}
	for _, name := range strings.Split(*videosFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		start := time.Now()
		qs, err := synth.MovieScaled(name, *scaleFlag)
		if err != nil {
			fatal(err)
		}
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		truth := qs.World.Truth
		vd, err := vaq.IngestVideo(det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), vaq.IngestConfig{Workers: workers})
		if err != nil {
			fatal(fmt.Errorf("ingest %s: %w", name, err))
		}
		if err := repo.Add(name, vd); err != nil {
			fatal(err)
		}
		fmt.Printf("ingested %s: %d clips, %d object tables, %d action tables, %d tracks (%v)\n",
			name, truth.Meta.Clips(), len(vd.ObjTables), len(vd.ActTables),
			vd.TracksOpened, time.Since(start).Round(time.Millisecond))
	}
	fmt.Printf("repository %s now holds: %v\n", *dirFlag, repo.Videos())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqingest:", err)
	os.Exit(1)
}
