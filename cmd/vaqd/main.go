// Command vaqd is the query-serving daemon: a resident HTTP server
// hosting concurrent online VQL sessions over synthetic streams and
// offline top-k queries against a repository built by vaqingest.
//
//	vaqd -addr :8080 -repo vaq-repo -max-sessions 128 -workers 8
//
// Create a session and poll it:
//
//	curl -s localhost:8080/v1/sessions -d '{"workload": "q2"}'
//	curl -s 'localhost:8080/v1/sessions/s1/results?wait=5s'
//
// vaqd drains gracefully on SIGINT/SIGTERM: new sessions are rejected,
// in-flight sessions run to completion until -drain-timeout, then are
// cancelled. See docs/SERVER.md for the full API.
//
// With -coordinator, vaqd instead fronts a fleet of vaqd shard
// processes (scatter-gather top-k with cross-shard bound broadcast,
// consistent-hash routing for sessions — see docs/SHARDING.md):
//
//	vaqd -coordinator -addr :8080 -shards s0=localhost:8081,s1=localhost:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"vaq"
	"vaq/internal/brownout"
	"vaq/internal/fault"
	"vaq/internal/resilience"
	"vaq/internal/server"
	"vaq/internal/shard"
	"vaq/internal/trace"
)

func main() {
	var (
		addrFlag     = flag.String("addr", ":8080", "listen address")
		repoFlag     = flag.String("repo", "", "repository directory for /v1/topk (optional)")
		sessionsFlag = flag.Int("max-sessions", 64, "maximum concurrently running sessions")
		workersFlag  = flag.Int("workers", 0, "worker pool shared by all sessions and offline top-k queries (0 = GOMAXPROCS)")
		timeoutFlag  = flag.Duration("request-timeout", 30*time.Second, "per-request timeout for create/top-k")
		waitFlag     = flag.Duration("max-wait", time.Minute, "cap on ?wait= long-poll duration")
		drainFlag    = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown lets sessions finish before cancelling")
		spansFlag    = flag.Int("trace-spans", trace.DefaultCapacity, "span retention of the /tracez ring buffer")
		slowFlag     = flag.Duration("slow-query", 0, "log root spans slower than this to stderr as one-line JSON (0 = off)")
		pprofFlag    = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		shedFlag     = flag.Duration("shed-wait", 0, "shed create/top-k requests (503 + Retry-After) when the p90 worker-queue wait reaches this (0 = off)")
		brownFlag    = flag.Duration("brownout", 0, "arm the brownout ladder: step the degradation level up when the p90 worker-queue wait reaches this (0 = off)")
		brownLoFlag  = flag.Duration("brownout-low", 0, "step the brownout level back down when the p90 wait falls to this (0 = half of -brownout)")
		brownDwFlag  = flag.Duration("brownout-dwell", 0, "minimum time between brownout level changes (0 = default 2s)")
		retriesFlag  = flag.Int("retries", resilience.DefaultPolicy().MaxRetries, "detector retry budget per invocation")
		brkFailFlag  = flag.Int("breaker-failures", resilience.DefaultPolicy().BreakerFailures, "consecutive detector failures that open the circuit breaker (0 = off)")
		brkCoolFlag  = flag.Duration("breaker-cooldown", resilience.DefaultPolicy().BreakerCooldown, "how long an open breaker rejects before a half-open probe")
		faultFlag    = flag.String("fault", "", "deterministic fault schedule for session detectors, e.g. 'error:0-999:0.1,latency:500-:0.2:20ms' (chaos testing)")
		seedFlag     = flag.Int64("fault-seed", 1, "seed for the fault schedule and resilience jitter")
		hedgeFlag    = flag.Float64("hedge-quantile", 0, "hedge detector calls outliving this observed latency quantile, e.g. 0.95 (0 = off)")
		lblBrkFlag   = flag.Bool("label-breaker", false, "add per-(backend, label) circuit breakers inside the per-backend one")
		adaptFlag    = flag.Duration("adaptive-retries", 0, "shrink retry budgets to zero as the p90 worker-queue wait warms toward this (0 = off)")
		chainFlag    = flag.String("fallback-chain", "", "comma-separated cheaper detector profiles tried in order before the prior, e.g. 'yolov3,ideal'")
		sharedFlag   = flag.Bool("shared-inference", true, "share one detection stack (singleflight dedup + score cache) across sessions of the same workload/scale/model")
		cacheFlag    = flag.Int("infer-cache", 0, "shared score cache capacity in entries (0 = default 65536, negative = dedup only)")
		batchWFlag   = flag.Duration("batch-window", 0, "hold shared-inference invocations this long to micro-batch same-profile units (0 = off)")
		batchNFlag   = flag.Int("batch-max", 16, "max units per micro-batched detector call")
		planRFlag    = flag.Int("plan-rate", 0, "adaptive sampling base rate: evaluate predicates on 1 unit in N, densifying only undecided clips (0 = dense, 1 = planner with the dense rung)")
		planLFlag    = flag.Int("plan-levels", 0, "cap on the densification ladder length (0 = full ladder down to stride 1)")
		explainFlag  = flag.Int("explain-ring", 0, "EXPLAIN profiles retained by /explainz (0 = default 64, negative = disable collection)")
		coordFlag    = flag.Bool("coordinator", false, "run as a scatter-gather coordinator over -shards instead of serving queries locally")
		shardsFlag   = flag.String("shards", "", "comma-separated shard backends for -coordinator, each name=host:port (or bare host:port)")
		sHedgeFlag   = flag.Duration("shard-hedge", 0, "coordinator: hedge idempotent shard reads that have not answered within this delay (0 = off)")
		bcastFlag    = flag.Duration("bound-broadcast", 0, "coordinator: period of the cross-shard B_lo^K bound broadcast during top-k scatters (0 = off)")
	)
	flag.Parse()

	if *coordFlag {
		runCoordinator(coordinatorFlags{
			addr:            *addrFlag,
			shards:          *shardsFlag,
			requestTimeout:  *timeoutFlag,
			hedge:           *sHedgeFlag,
			broadcast:       *bcastFlag,
			breakerFailures: *brkFailFlag,
			breakerCooldown: *brkCoolFlag,
			explainRing:     *explainFlag,
			traceSpans:      *spansFlag,
			slowQuery:       *slowFlag,
			drain:           *drainFlag,
		})
		return
	}
	if *shardsFlag != "" || *sHedgeFlag != 0 || *bcastFlag != 0 {
		fatal(fmt.Errorf("-shards, -shard-hedge and -bound-broadcast require -coordinator"))
	}

	topts := []trace.Option{trace.WithCapacity(*spansFlag)}
	if *slowFlag > 0 {
		topts = append(topts, trace.WithSlowLog(*slowFlag, os.Stderr))
	}
	pol := resilience.DefaultPolicy()
	pol.MaxRetries = *retriesFlag
	pol.BreakerFailures = *brkFailFlag
	pol.BreakerCooldown = *brkCoolFlag
	pol.Seed = *seedFlag
	cfg := server.Config{
		MaxSessions:     *sessionsFlag,
		Workers:         *workersFlag,
		RequestTimeout:  *timeoutFlag,
		MaxWait:         *waitFlag,
		Tracer:          trace.New(topts...),
		Resilience:      &pol,
		ShedWait:        *shedFlag,
		HedgeQuantile:   *hedgeFlag,
		LabelBreaker:    *lblBrkFlag,
		AdaptiveRetries: *adaptFlag,
		SharedInference: *sharedFlag,
		InferCache:      *cacheFlag,
		BatchWindow:     *batchWFlag,
		BatchMax:        *batchNFlag,
		ExplainRing:     *explainFlag,
	}
	if *hedgeFlag != 0 && (*hedgeFlag <= 0 || *hedgeFlag >= 1) {
		fatal(fmt.Errorf("-hedge-quantile must be in (0, 1), got %v", *hedgeFlag))
	}
	if *brownLoFlag < 0 || *brownDwFlag < 0 || *brownFlag < 0 {
		fatal(fmt.Errorf("-brownout flags must be non-negative"))
	}
	if *brownFlag == 0 && (*brownLoFlag > 0 || *brownDwFlag > 0) {
		fatal(fmt.Errorf("-brownout-low and -brownout-dwell require -brownout"))
	}
	if *brownFlag > 0 {
		if *brownLoFlag >= *brownFlag {
			fatal(fmt.Errorf("-brownout-low (%v) must be below -brownout (%v)", *brownLoFlag, *brownFlag))
		}
		cfg.Brownout = brownout.Config{High: *brownFlag, Low: *brownLoFlag, Dwell: *brownDwFlag}
		lo, dw := *brownLoFlag, *brownDwFlag
		if lo <= 0 {
			lo = *brownFlag / 2
		}
		if dw <= 0 {
			dw = brownout.DefaultDwell
		}
		fmt.Printf("vaqd: brownout ladder armed: high %v, low %v, dwell %v\n", *brownFlag, lo, dw)
	}
	// Sizing bugs are fatal at startup, not deferred to the first session
	// that exercises them.
	if *batchNFlag <= 0 {
		fatal(fmt.Errorf("-batch-max must be positive, got %d", *batchNFlag))
	}
	if *batchWFlag < 0 {
		fatal(fmt.Errorf("-batch-window must be non-negative, got %v", *batchWFlag))
	}
	if err := (vaq.PlanConfig{Rate: *planRFlag, Levels: *planLFlag}).Validate(); err != nil {
		fatal(err)
	}
	cfg.PlanRate, cfg.PlanLevels = *planRFlag, *planLFlag
	if *planRFlag > 0 {
		fmt.Printf("vaqd: adaptive sampling planner armed: rate %d, levels %d\n", *planRFlag, *planLFlag)
	}
	if *chainFlag != "" {
		for _, m := range strings.Split(*chainFlag, ",") {
			if m = strings.TrimSpace(m); m != "" {
				cfg.FallbackChain = append(cfg.FallbackChain, m)
			}
		}
		if err := server.ValidateFallbackChain(cfg.FallbackChain); err != nil {
			fatal(err)
		}
		fmt.Printf("vaqd: fallback chain armed: %s -> prior\n", strings.Join(cfg.FallbackChain, " -> "))
	}
	if *faultFlag != "" {
		sched, err := fault.Parse(*seedFlag, *faultFlag)
		if err != nil {
			fatal(err)
		}
		cfg.FaultSchedule = sched
		fmt.Printf("vaqd: fault injection armed: %s\n", sched)
	}
	if *repoFlag != "" {
		repo, err := vaq.OpenRepository(*repoFlag)
		if err != nil {
			fatal(err)
		}
		cfg.Repo = repo
		fmt.Printf("vaqd: repository %s: videos %v\n", *repoFlag, repo.Videos())
	}
	srv := server.New(cfg)
	handler := srv.Handler()
	if *pprofFlag {
		// Profiling rides on the API listener behind an explicit opt-in;
		// the API mux keeps its routes and pprof takes /debug/pprof/.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("vaqd: pprof enabled at /debug/pprof/")
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Listen before Serve so -addr :0 can report the kernel-assigned
	// port (the sharding acceptance tests parse this line).
	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Printf("vaqd: listening on %s (max-sessions %d)\n", ln.Addr(), *sessionsFlag)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	fmt.Println("vaqd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainFlag)
	defer cancel()
	// Stop accepting requests first, then drain sessions.
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "vaqd: http shutdown:", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "vaqd: cancelled in-flight sessions:", err)
	}
	fmt.Println("vaqd: bye")
}

// coordinatorFlags carries the subset of flags the coordinator mode
// consumes.
type coordinatorFlags struct {
	addr            string
	shards          string
	requestTimeout  time.Duration
	hedge           time.Duration
	broadcast       time.Duration
	breakerFailures int
	breakerCooldown time.Duration
	explainRing     int
	traceSpans      int
	slowQuery       time.Duration
	drain           time.Duration
}

// runCoordinator serves the scatter-gather tier over a fleet of vaqd
// shard processes.
func runCoordinator(f coordinatorFlags) {
	if f.shards == "" {
		fatal(fmt.Errorf("-coordinator requires -shards"))
	}
	backends, err := shard.ParseBackends(f.shards)
	if err != nil {
		fatal(err)
	}
	topts := []trace.Option{trace.WithCapacity(f.traceSpans)}
	if f.slowQuery > 0 {
		topts = append(topts, trace.WithSlowLog(f.slowQuery, os.Stderr))
	}
	co, err := shard.New(shard.Config{
		Backends:        backends,
		RequestTimeout:  f.requestTimeout,
		HedgeDelay:      f.hedge,
		BreakerFailures: f.breakerFailures,
		BreakerCooldown: f.breakerCooldown,
		BroadcastEvery:  f.broadcast,
		Tracer:          trace.New(topts...),
		ExplainRing:     f.explainRing,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", f.addr)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	names := make([]string, len(backends))
	for i, b := range backends {
		names[i] = b.Name
	}
	fmt.Printf("vaqd: listening on %s (coordinator over %s)\n", ln.Addr(), strings.Join(names, ", "))

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	fmt.Println("vaqd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), f.drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "vaqd: http shutdown:", err)
	}
	fmt.Println("vaqd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqd:", err)
	os.Exit(1)
}
