package main

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"vaq/internal/experiments"
)

// csvSink writes each experiment's rows as <dir>/<experiment>.csv so the
// series can be re-plotted outside Go.
type csvSink struct {
	dir string
}

func newCSVSink(dir string) (*csvSink, error) {
	if dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("csv dir: %w", err)
	}
	return &csvSink{dir: dir}, nil
}

func (s *csvSink) write(name string, header []string, rows [][]string) error {
	if s == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(s.dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func ffloat(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func fint(v int) string       { return strconv.Itoa(v) }
func fint64(v int64) string   { return strconv.FormatInt(v, 10) }

func (s *csvSink) fig2(rows []experiments.Fig2Result) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Query, ffloat(r.P0), ffloat(r.SVAQ), ffloat(r.SVAQD)}
	}
	return s.write("fig2", []string{"query", "p0", "svaq_f1", "svaqd_f1"}, out)
}

func (s *csvSink) fig3(rows []experiments.Fig3Result) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Set, r.Query, ffloat(r.SVAQ), ffloat(r.SVAQD)}
	}
	return s.write("fig3", []string{"set", "query", "svaq_f1", "svaqd_f1"}, out)
}

func (s *csvSink) table3(rows []experiments.Table3Result) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Query, ffloat(r.SVAQ), ffloat(r.SVAQD)}
	}
	return s.write("table3", []string{"query", "svaq_f1", "svaqd_f1"}, out)
}

func (s *csvSink) table4(rows []experiments.Table4Result) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Models, ffloat(r.SVAQ), ffloat(r.SVAQD)}
	}
	return s.write("table4", []string{"models", "svaq_f1", "svaqd_f1"}, out)
}

func (s *csvSink) table5(rows []experiments.Table5Result) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Query,
			ffloat(r.ActionFPRRaw), ffloat(r.ActionFPRWithSVAQD),
			ffloat(r.ObjectFPRRaw), ffloat(r.ObjectFPRWithSVAQD),
			ffloat(r.ActionNoiseEliminated), ffloat(r.ObjectNoiseEliminated),
		}
	}
	return s.write("table5", []string{
		"query", "action_fpr_raw", "action_fpr_svaqd",
		"object_fpr_raw", "object_fpr_svaqd",
		"action_noise_eliminated", "object_noise_eliminated",
	}, out)
}

func (s *csvSink) fig45(rows []experiments.ClipSizeResult) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Query, fint(r.ClipFrames), fint(r.Sequences), ffloat(r.FrameF1), fint(r.FramesFound)}
	}
	return s.write("fig4_5", []string{"query", "clip_frames", "sequences", "frame_f1", "frames_found"}, out)
}

func (s *csvSink) table6(rows []experiments.Table6Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Method, fint(r.K), fint64(r.Runtime.Microseconds()), fint64(r.RandomAccesses), fint64(r.SortedAccesses)}
	}
	return s.write("table6", []string{"method", "k", "runtime_us", "random_accesses", "sorted_accesses"}, out)
}

func (s *csvSink) table7(rows []experiments.Table7Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Set, r.Method, fint64(r.Runtime.Microseconds()), fint64(r.RandomAccesses)}
	}
	return s.write("table7", []string{"set", "method", "runtime_us", "random_accesses"}, out)
}

func (s *csvSink) table8(rows []experiments.Table8Row) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		k := fint(r.K)
		if r.MaxK {
			k = "max"
		}
		out[i] = []string{r.Movie, k, ffloat(r.Speedup)}
	}
	return s.write("table8", []string{"movie", "k", "speedup"}, out)
}

func (s *csvSink) parallel(rows []experiments.ParallelRow) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Phase, fint(r.Workers), fint64(r.Wall.Microseconds()), fint64(r.CPU.Microseconds()), ffloat(r.Speedup)}
	}
	return s.write("parallel", []string{"phase", "workers", "wall_us", "cpu_us", "speedup"}, out)
}

func (s *csvSink) chaos(res *experiments.ChaosResult) error {
	out := make([][]string, len(res.Curve))
	for i, r := range res.Curve {
		out[i] = []string{
			ffloat(r.Rate), ffloat(r.F1), ffloat(r.USPerClip),
			fint64(r.Retries), fint64(r.Fallbacks), fint(r.DegradedUnits),
		}
	}
	return s.write("chaos", []string{"rate", "f1", "us_per_clip", "retries", "fallbacks", "degraded_units"}, out)
}

func (s *csvSink) hedge(res *experiments.HedgeResult) error {
	return s.write("hedge", []string{
		"calls", "rate", "delay_ms",
		"base_p50_us", "base_p99_us", "hedged_p50_us", "hedged_p99_us", "p99_ratio",
		"hedges", "hedge_wins", "healthy_invocations", "healthy_extra_ratio",
	}, [][]string{{
		fint(res.Calls), ffloat(res.Rate), ffloat(res.DelayMS),
		ffloat(res.BaseP50US), ffloat(res.BaseP99US), ffloat(res.HedgedP50US), ffloat(res.HedgedP99US), ffloat(res.P99Ratio),
		fint64(res.Hedges), fint64(res.HedgeWins), fint64(res.HealthyInvocations), ffloat(res.HealthyExtraRatio),
	}})
}

func (s *csvSink) manySessions(res *experiments.ManySessionsResult) error {
	return s.write("manysessions", []string{
		"sessions", "clips", "baseline_calls", "shared_calls", "reduction",
		"cache_hits", "coalesced", "identical",
	}, [][]string{{
		fint(res.Sessions), fint(res.Clips), fint64(res.BaselineCalls), fint64(res.SharedCalls),
		ffloat(res.Reduction), fint64(res.CacheHits), fint64(res.Coalesced),
		strconv.FormatBool(res.Identical),
	}})
}

func (s *csvSink) plan(res *experiments.PlanResult) error {
	out := make([][]string, len(res.Legs))
	for i, l := range res.Legs {
		out[i] = []string{
			fint(l.Rate), ffloat(l.F1), fint64(l.Invocations), ffloat(l.Reduction),
			fint(l.Accepted), fint(l.Pruned), fint(l.Densified),
			strconv.FormatBool(l.MatchesDense), strconv.FormatBool(l.Deterministic),
		}
	}
	return s.write("plan", []string{
		"rate", "f1", "invocations", "reduction",
		"accepted", "pruned", "densified", "matches_dense", "deterministic",
	}, out)
}

func (s *csvSink) brownout(res *experiments.BrownoutResult) error {
	traj := make([][]string, len(res.Trajectory))
	for i, r := range res.Trajectory {
		traj[i] = []string{
			fint(r.Step), ffloat(r.P90MS), r.Level,
			strconv.FormatBool(r.Transitioned), strconv.FormatBool(res.Deterministic),
		}
	}
	if err := s.write("brownout", []string{"step", "p90_ms", "level", "transitioned", "deterministic"}, traj); err != nil {
		return err
	}
	levels := make([][]string, len(res.Levels))
	for i, r := range res.Levels {
		levels[i] = []string{
			r.Level, ffloat(r.F1), ffloat(r.USPerClip),
			fint64(r.Fallbacks), fint(r.DegradedUnits),
		}
	}
	return s.write("brownout_levels", []string{"level", "f1", "us_per_clip", "fallbacks", "degraded_units"}, levels)
}

func (s *csvSink) traceOverhead(rows []experiments.TraceOverheadResult) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Mode, fint(r.Clips), fint(r.Reps), ffloat(r.USPerClip), fint64(int64(r.Spans))}
	}
	return s.write("trace_overhead", []string{"mode", "clips", "reps", "us_per_clip", "spans"}, out)
}

func (s *csvSink) explainOverhead(rows []experiments.ExplainOverheadResult) error {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{r.Mode, fint(r.Clips), fint(r.Reps), ffloat(r.USPerClip), fint64(r.Invocations)}
	}
	return s.write("explain_overhead", []string{"mode", "clips", "reps", "us_per_clip", "invocations"}, out)
}
