// Command vaqbench regenerates the tables and figures of the paper's
// evaluation (§5). Run with no flags for the full suite at paper scale,
// or select individual experiments:
//
//	vaqbench -exp fig2,table6 -scale 0.2
//
// Experiment ids: fig2, fig3, table3, table4, table5, fig4, fig5 (alias
// fig45), runtime, drift, table6, table7, table8, parallel, ablation,
// trace-overhead, explain, chaos, hedge, manysessions, plan, brownout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vaq/internal/experiments"
)

func main() {
	var (
		expFlag   = flag.String("exp", "all", "comma-separated experiment ids (or 'all')")
		scaleFlag = flag.Float64("scale", 1.0, "workload scale (1 = paper-sized datasets)")
		csvFlag   = flag.String("csv", "", "directory for per-experiment CSV output (optional)")
	)
	flag.Parse()

	ctx := experiments.NewContext(os.Stdout)
	ctx.Scale = *scaleFlag
	sink, err := newCSVSink(*csvFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vaqbench:", err)
		os.Exit(1)
	}

	wanted := map[string]bool{}
	for _, id := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(strings.ToLower(id))] = true
	}
	all := wanted["all"]
	want := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if wanted[id] {
				return true
			}
		}
		return false
	}

	type experiment struct {
		ids []string
		run func() error
	}
	exps := []experiment{
		{[]string{"fig2"}, func() error {
			rows, err := ctx.Fig2()
			if err != nil {
				return err
			}
			return sink.fig2(rows)
		}},
		{[]string{"fig3"}, func() error {
			rows, err := ctx.Fig3()
			if err != nil {
				return err
			}
			return sink.fig3(rows)
		}},
		{[]string{"table3"}, func() error {
			rows, err := ctx.Table3()
			if err != nil {
				return err
			}
			return sink.table3(rows)
		}},
		{[]string{"table4"}, func() error {
			rows, err := ctx.Table4()
			if err != nil {
				return err
			}
			return sink.table4(rows)
		}},
		{[]string{"table5"}, func() error {
			rows, err := ctx.Table5()
			if err != nil {
				return err
			}
			return sink.table5(rows)
		}},
		{[]string{"fig4", "fig5", "fig45"}, func() error {
			rows, err := ctx.Fig4And5()
			if err != nil {
				return err
			}
			return sink.fig45(rows)
		}},
		{[]string{"runtime"}, func() error { _, err := ctx.OnlineRuntime(); return err }},
		{[]string{"drift"}, func() error { _, err := ctx.Drift(); return err }},
		{[]string{"table6"}, func() error {
			rows, err := ctx.Table6()
			if err != nil {
				return err
			}
			return sink.table6(rows)
		}},
		{[]string{"table7"}, func() error {
			rows, err := ctx.Table7()
			if err != nil {
				return err
			}
			return sink.table7(rows)
		}},
		{[]string{"table8"}, func() error {
			rows, err := ctx.Table8()
			if err != nil {
				return err
			}
			return sink.table8(rows)
		}},
		{[]string{"parallel"}, func() error {
			rows, err := ctx.ParallelSpeedup()
			if err != nil {
				return err
			}
			return sink.parallel(rows)
		}},
		{[]string{"trace-overhead", "traceoverhead"}, func() error {
			rows, err := ctx.TraceOverhead()
			if err != nil {
				return err
			}
			return sink.traceOverhead(rows)
		}},
		{[]string{"explain"}, func() error {
			rows, err := ctx.ExplainOverhead()
			if err != nil {
				return err
			}
			return sink.explainOverhead(rows)
		}},
		{[]string{"chaos"}, func() error {
			res, err := ctx.Chaos()
			if err != nil {
				return err
			}
			return sink.chaos(res)
		}},
		{[]string{"hedge"}, func() error {
			res, err := ctx.Hedge()
			if err != nil {
				return err
			}
			return sink.hedge(res)
		}},
		{[]string{"manysessions", "many-sessions"}, func() error {
			res, err := ctx.ManySessions()
			if err != nil {
				return err
			}
			return sink.manySessions(res)
		}},
		{[]string{"plan"}, func() error {
			res, err := ctx.Plan()
			if err != nil {
				return err
			}
			return sink.plan(res)
		}},
		{[]string{"brownout"}, func() error {
			res, err := ctx.Brownout()
			if err != nil {
				return err
			}
			return sink.brownout(res)
		}},
		{[]string{"ablation"}, func() error {
			if _, err := ctx.AblationShortCircuit(); err != nil {
				return err
			}
			if _, err := ctx.AblationKernelU(); err != nil {
				return err
			}
			if _, err := ctx.AblationAlpha(); err != nil {
				return err
			}
			_, err := ctx.AblationCritValue()
			return err
		}},
	}

	ran := 0
	for _, e := range exps {
		if !want(e.ids...) {
			continue
		}
		ran++
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "vaqbench: %s: %v\n", e.ids[0], err)
			os.Exit(1)
		}
		fmt.Printf("  [%s done in %v]\n\n", e.ids[0], time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "vaqbench: no experiment matched %q\n", *expFlag)
		os.Exit(2)
	}
}
