// Command vaqstat inspects a repository built by vaqingest: per-video
// label coverage, table sizes, and the individual sequences a given
// label contributes (the raw material of Equation 12).
//
//	vaqstat -dir vaq-repo
//	vaqstat -dir vaq-repo -video coffee_and_cigarettes -label smoking
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"vaq"
	"vaq/internal/annot"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/tables"
)

func main() {
	var (
		dirFlag   = flag.String("dir", "vaq-repo", "repository directory")
		videoFlag = flag.String("video", "", "restrict to one video")
		labelFlag = flag.String("label", "", "show one label's sequences and score range")
	)
	flag.Parse()

	repo, err := vaq.OpenRepository(*dirFlag)
	if err != nil {
		fatal(err)
	}
	names := repo.Videos()
	if len(names) == 0 {
		fmt.Printf("repository %s is empty\n", *dirFlag)
		return
	}
	for _, name := range names {
		if *videoFlag != "" && name != *videoFlag {
			continue
		}
		vd, err := ingest.Load(filepath.Join(*dirFlag, name))
		if err != nil {
			fatal(err)
		}
		printVideo(name, vd, annot.Label(*labelFlag))
	}
}

func printVideo(name string, vd *ingest.VideoData, label annot.Label) {
	meta := vd.Meta
	fmt.Printf("%s: %d frames, %d clips (%d-frame clips of %d shots), %d tracks\n",
		name, meta.Frames, meta.Clips(), meta.Geom.ClipLen(), meta.Geom.ShotsPerClip, vd.TracksOpened)
	if label != "" {
		printLabel(vd, label)
		fmt.Println()
		return
	}
	fmt.Printf("  %-18s %-7s %8s %10s %12s\n", "label", "kind", "rows", "sequences", "clip cover")
	printGroup := func(kind string, tabs map[annot.Label]tables.Table, seqs map[annot.Label]interval.Set) {
		labels := make([]string, 0, len(tabs))
		for l := range tabs {
			labels = append(labels, string(l))
		}
		sort.Strings(labels)
		for _, l := range labels {
			s := seqs[annot.Label(l)]
			fmt.Printf("  %-18s %-7s %8d %10d %12d\n",
				l, kind, tabs[annot.Label(l)].Len(), len(s), s.Len())
		}
	}
	printGroup("object", vd.ObjTables, vd.ObjSeqs)
	printGroup("action", vd.ActTables, vd.ActSeqs)
	fmt.Println()
}

func printLabel(vd *ingest.VideoData, label annot.Label) {
	show := func(kind string, tab tables.Table, seqs interval.Set) {
		if tab == nil {
			return
		}
		fmt.Printf("  %s %q: %d rows", kind, label, tab.Len())
		if tab.Len() > 0 {
			top, _ := tab.SortedRow(0, nil)
			btm, _ := tab.ReverseRow(0, nil)
			fmt.Printf(", scores [%.2f, %.2f]", btm.Score, top.Score)
		}
		fmt.Printf("\n  sequences (%d): %v\n", len(seqs), seqs)
	}
	show("object", vd.ObjTables[label], vd.ObjSeqs[label])
	show("action", vd.ActTables[label], vd.ActSeqs[label])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqstat:", err)
	os.Exit(1)
}
