// Command vaqstat inspects a repository built by vaqingest: per-video
// label coverage, table sizes, and the individual sequences a given
// label contributes (the raw material of Equation 12).
//
//	vaqstat -dir vaq-repo
//	vaqstat -dir vaq-repo -video coffee_and_cigarettes -label smoking
//	vaqstat -dir vaq-repo -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"vaq"
	"vaq/internal/annot"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/tables"
)

// statRange is one sequence in the JSON document, the same shape as the
// server API's Range.
type statRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// statLabel is one label's coverage row in the JSON document.
type statLabel struct {
	Label     string `json:"label"`
	Kind      string `json:"kind"` // "object" or "action"
	Rows      int    `json:"rows"`
	Sequences int    `json:"sequences"`
	ClipCover int    `json:"clip_cover"`
	// ScoreMin/ScoreMax bound the label's score table; present only when
	// the document was restricted with -label (they cost sorted-access
	// reads).
	ScoreMin *float64 `json:"score_min,omitempty"`
	ScoreMax *float64 `json:"score_max,omitempty"`
	// Seqs lists the label's sequences, present only with -label.
	Seqs []statRange `json:"seqs,omitempty"`
}

// statVideo is one video's entry in the JSON document.
type statVideo struct {
	Name         string `json:"name"`
	Frames       int    `json:"frames"`
	Clips        int    `json:"clips"`
	ClipLen      int    `json:"clip_len"`
	ShotsPerClip int    `json:"shots_per_clip"`
	Tracks       int    `json:"tracks"`
	// DegradedFrames/DegradedShots count units the ingest-time fallback
	// served; DegradedHops breaks them down by 1-based chain hop ("0"
	// collects legacy units with no recorded hop).
	DegradedFrames int            `json:"degraded_frames,omitempty"`
	DegradedShots  int            `json:"degraded_shots,omitempty"`
	DegradedHops   map[string]int `json:"degraded_hops,omitempty"`
	Labels         []statLabel    `json:"labels"`
}

// statDoc is the vaqstat -json document.
type statDoc struct {
	Dir    string      `json:"dir"`
	Videos []statVideo `json:"videos"`
}

func main() {
	var (
		dirFlag   = flag.String("dir", "vaq-repo", "repository directory")
		videoFlag = flag.String("video", "", "restrict to one video")
		labelFlag = flag.String("label", "", "show one label's sequences and score range")
		jsonFlag  = flag.Bool("json", false, "emit the repository statistics as a JSON document")
	)
	flag.Parse()

	repo, err := vaq.OpenRepository(*dirFlag)
	if err != nil {
		fatal(err)
	}
	names := repo.Videos()
	if len(names) == 0 {
		if *jsonFlag {
			emitJSON(statDoc{Dir: *dirFlag, Videos: []statVideo{}})
			return
		}
		fmt.Printf("repository %s is empty\n", *dirFlag)
		return
	}
	doc := statDoc{Dir: *dirFlag, Videos: []statVideo{}}
	for _, name := range names {
		if *videoFlag != "" && name != *videoFlag {
			continue
		}
		vd, err := ingest.Load(filepath.Join(*dirFlag, name))
		if err != nil {
			fatal(err)
		}
		if *jsonFlag {
			doc.Videos = append(doc.Videos, videoStats(name, vd, annot.Label(*labelFlag)))
			continue
		}
		printVideo(name, vd, annot.Label(*labelFlag))
	}
	if *jsonFlag {
		emitJSON(doc)
	}
}

// videoStats assembles one video's JSON entry; a non-empty label
// restricts the rows to it and adds score bounds and sequences.
func videoStats(name string, vd *ingest.VideoData, label annot.Label) statVideo {
	meta := vd.Meta
	sv := statVideo{
		Name:         name,
		Frames:       meta.Frames,
		Clips:        meta.Clips(),
		ClipLen:      meta.Geom.ClipLen(),
		ShotsPerClip: meta.Geom.ShotsPerClip,
		Tracks:       vd.TracksOpened,
		Labels:       []statLabel{},
	}
	sv.DegradedFrames = len(vd.DegradedFrames)
	sv.DegradedShots = len(vd.DegradedShots)
	sv.DegradedHops = hopCounts(vd)
	addGroup := func(kind string, tabs map[annot.Label]tables.Table, seqs map[annot.Label]interval.Set) {
		labels := make([]string, 0, len(tabs))
		for l := range tabs {
			if label != "" && l != label {
				continue
			}
			labels = append(labels, string(l))
		}
		sort.Strings(labels)
		for _, l := range labels {
			tab, s := tabs[annot.Label(l)], seqs[annot.Label(l)]
			row := statLabel{Label: l, Kind: kind, Rows: tab.Len(), Sequences: len(s), ClipCover: s.Len()}
			if label != "" {
				if tab.Len() > 0 {
					top, _ := tab.SortedRow(0, nil)
					btm, _ := tab.ReverseRow(0, nil)
					row.ScoreMin, row.ScoreMax = &btm.Score, &top.Score
				}
				row.Seqs = make([]statRange, 0, len(s))
				for _, iv := range s {
					row.Seqs = append(row.Seqs, statRange{Lo: iv.Lo, Hi: iv.Hi})
				}
			}
			sv.Labels = append(sv.Labels, row)
		}
	}
	addGroup("object", vd.ObjTables, vd.ObjSeqs)
	addGroup("action", vd.ActTables, vd.ActSeqs)
	return sv
}

// hopCounts tallies the video's degraded units by fallback hop. Units
// recorded before hop persistence land under "0" (hop unknown).
func hopCounts(vd *ingest.VideoData) map[string]int {
	if len(vd.DegradedFrames) == 0 && len(vd.DegradedShots) == 0 {
		return nil
	}
	out := map[string]int{}
	for _, f := range vd.DegradedFrames {
		out[strconv.Itoa(vd.DegradedFrameHops[f])]++
	}
	for _, s := range vd.DegradedShots {
		out[strconv.Itoa(vd.DegradedShotHops[s])]++
	}
	return out
}

func printVideo(name string, vd *ingest.VideoData, label annot.Label) {
	meta := vd.Meta
	fmt.Printf("%s: %d frames, %d clips (%d-frame clips of %d shots), %d tracks\n",
		name, meta.Frames, meta.Clips(), meta.Geom.ClipLen(), meta.Geom.ShotsPerClip, vd.TracksOpened)
	if hops := hopCounts(vd); hops != nil {
		keys := make([]string, 0, len(hops))
		for h := range hops {
			keys = append(keys, h)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, h := range keys {
			parts = append(parts, fmt.Sprintf("hop %s: %d", h, hops[h]))
		}
		fmt.Printf("  degraded: %d frames, %d shots (%s)\n",
			len(vd.DegradedFrames), len(vd.DegradedShots), strings.Join(parts, ", "))
	}
	if label != "" {
		printLabel(vd, label)
		fmt.Println()
		return
	}
	fmt.Printf("  %-18s %-7s %8s %10s %12s\n", "label", "kind", "rows", "sequences", "clip cover")
	printGroup := func(kind string, tabs map[annot.Label]tables.Table, seqs map[annot.Label]interval.Set) {
		labels := make([]string, 0, len(tabs))
		for l := range tabs {
			labels = append(labels, string(l))
		}
		sort.Strings(labels)
		for _, l := range labels {
			s := seqs[annot.Label(l)]
			fmt.Printf("  %-18s %-7s %8d %10d %12d\n",
				l, kind, tabs[annot.Label(l)].Len(), len(s), s.Len())
		}
	}
	printGroup("object", vd.ObjTables, vd.ObjSeqs)
	printGroup("action", vd.ActTables, vd.ActSeqs)
	fmt.Println()
}

func printLabel(vd *ingest.VideoData, label annot.Label) {
	show := func(kind string, tab tables.Table, seqs interval.Set) {
		if tab == nil {
			return
		}
		fmt.Printf("  %s %q: %d rows", kind, label, tab.Len())
		if tab.Len() > 0 {
			top, _ := tab.SortedRow(0, nil)
			btm, _ := tab.ReverseRow(0, nil)
			fmt.Printf(", scores [%.2f, %.2f]", btm.Score, top.Score)
		}
		fmt.Printf("\n  sequences (%d): %v\n", len(seqs), seqs)
	}
	show("object", vd.ObjTables[label], vd.ObjSeqs[label])
	show("action", vd.ActTables[label], vd.ActSeqs[label])
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqstat:", err)
	os.Exit(1)
}
