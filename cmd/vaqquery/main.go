// Command vaqquery runs a VQL query online over a synthetic video
// stream, printing the result sequences as they are found.
//
//	vaqquery -set q2 -q "SELECT MERGE(clipID) AS Sequence FROM (PROCESS cam
//	  PRODUCE clipID, obj USING ObjectDetector, act USING ActionRecognizer)
//	  WHERE act = 'blowing_leaves' AND obj.include('car')"
//
// The -set flag picks the synthetic workload (one of the paper's
// Table 1 YouTube sets q1..q12 or a Table 2 movie name).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/metrics"
	"vaq/internal/server"
	"vaq/internal/synth"
	"vaq/internal/trace"
)

func main() {
	var (
		setFlag   = flag.String("set", "q2", "synthetic workload (q1..q12 or a movie name)")
		queryFlag = flag.String("q", "", "VQL query (defaults to the workload's own query)")
		dynFlag   = flag.Bool("dynamic", true, "use SVAQD (dynamic background estimation)")
		scaleFlag = flag.Float64("scale", 1.0, "workload scale")
		modelFlag = flag.String("model", "maskrcnn", "object detector profile: maskrcnn, yolov3, ideal")
		jsonFlag  = flag.Bool("json", false, "emit the result sequences as JSON in the server's response shape")
		traceFlag = flag.Bool("trace", false, "record a span per clip and predicate; print the span tree, counters and stage quantiles after the run")
		expFlag   = flag.Bool("explain", false, "collect a per-query EXPLAIN profile; print the attribution tree after the run (embedded in the document with -json)")
	)
	flag.Parse()

	qs, err := loadSet(*setFlag, *scaleFlag)
	if err != nil {
		fatal(err)
	}
	scene := qs.World.Scene()
	objP, actP := profiles(*modelFlag)
	det := detect.NewSimObjectDetector(scene, objP, nil)
	rec := detect.NewSimActionRecognizer(scene, actP, nil)
	meta := qs.World.Truth.Meta

	var stream *vaq.Stream
	query := qs.Query
	if *queryFlag != "" {
		plan, err := vaq.ParseQuery(*queryFlag)
		if err != nil {
			fatal(err)
		}
		if !*jsonFlag {
			fmt.Printf("compiled: %v\n", plan)
		}
		if q, ok := plan.SimpleQuery(); ok {
			query = q
		}
		stream, err = vaq.NewStream(plan, det, rec, meta.Geom, vaq.StreamConfig{
			Dynamic: *dynFlag, HorizonClips: meta.Clips(),
		})
		if err != nil {
			fatal(err)
		}
	} else {
		stream, err = vaq.NewStreamQuery(query, det, rec, meta.Geom, vaq.StreamConfig{
			Dynamic: *dynFlag, HorizonClips: meta.Clips(),
		})
		if err != nil {
			fatal(err)
		}
	}

	var ex *vaq.ExplainCollector
	var started time.Time
	if *expFlag {
		ex = vaq.NewExplainCollector("online")
		ex.SetID("cli")
		ex.SetWorkload(*setFlag)
		if *queryFlag != "" {
			ex.SetQuery(*queryFlag)
		} else {
			ex.SetQuery(fmt.Sprintf("%v", query))
		}
		stream.AttachExplain(ex)
		started = time.Now()
	}

	var tr *vaq.Tracer
	var root *trace.Span
	if *traceFlag {
		// Size the ring to the whole run: one span per clip plus one per
		// evaluated predicate (at most 8 predicates is generous here).
		tr = trace.New(trace.WithCapacity((meta.Clips() + 1) * 9))
		root = tr.StartSpan("vaqquery", 0)
		root.SetAttr("workload", *setFlag)
		stream.AttachTrace(tr, root.ID())
	}

	if !*jsonFlag {
		fmt.Printf("streaming %s (%d clips), query %v\n", meta.Name, meta.Clips(), query)
	}
	inSeq := false
	for c := 0; c < meta.Clips(); c++ {
		pos, err := stream.ProcessClip(c)
		if err != nil {
			fatal(err)
		}
		if *jsonFlag {
			continue
		}
		switch {
		case pos && !inSeq:
			fmt.Printf("  sequence opens at clip %d\n", c)
			inSeq = true
		case !pos && inSeq:
			fmt.Printf("  sequence closes at clip %d\n", c-1)
			inSeq = false
		}
	}
	seqs := stream.Results()
	if ex != nil {
		ex.SetDurUS(time.Since(started).Microseconds())
	}
	if tr != nil {
		root.SetInt("clips", int64(stream.ClipsProcessed()))
		root.End()
		// With -json the trace goes to stderr so the JSON document on
		// stdout stays parseable.
		traceOut := io.Writer(os.Stdout)
		if *jsonFlag {
			traceOut = os.Stderr
		}
		defer printTrace(tr, traceOut)
	}
	if *jsonFlag {
		// The same shape GET /v1/sessions/{id}/results serves, so
		// scripted consumers can switch between CLI and API freely.
		out := server.ResultsResponse{
			State:          server.StateDone,
			ClipsProcessed: stream.ClipsProcessed(),
			Sequences:      server.Ranges(seqs),
		}
		if ex != nil {
			p := ex.Profile()
			out.Explain = &p
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("%d result sequences: %v\n", len(seqs), seqs)

	if truth, err := qs.World.Truth.GroundTruthClips(query); err == nil {
		prf := metrics.SequenceF1(seqs, truth, metrics.DefaultIOUThreshold)
		fmt.Printf("vs ground truth: precision %.3f, recall %.3f, F1 %.3f\n",
			prf.Precision, prf.Recall, prf.F1)
	}
	if ex != nil {
		fmt.Println("--- explain ---")
		vaq.RenderExplain(os.Stdout, ex.Profile())
	}
}

// printTrace dumps the span trees and the sorted counter/stage
// exposition.
func printTrace(tr *vaq.Tracer, out io.Writer) {
	fmt.Fprintln(out, "--- trace ---")
	trace.RenderTrees(out, tr.Trees())
	fmt.Fprintln(out, "--- metrics ---")
	tr.WriteVarz(out)
}

func loadSet(name string, scale float64) (*synth.QuerySet, error) {
	for _, id := range synth.YouTubeIDs() {
		if id == name {
			return synth.YouTubeScaled(id, vaq.DefaultGeometry(), scale)
		}
	}
	return synth.MovieScaled(name, scale)
}

func profiles(model string) (detect.Profile, detect.Profile) {
	switch model {
	case "yolov3":
		return detect.YOLOv3, detect.I3D
	case "ideal":
		return detect.IdealObject, detect.IdealAction
	default:
		return detect.MaskRCNN, detect.I3D
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqquery:", err)
	os.Exit(1)
}
