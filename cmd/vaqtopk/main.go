// Command vaqtopk answers an offline top-k query against a repository
// built by vaqingest, comparing RVAQ against the paper's baselines on
// request.
//
//	vaqtopk -dir vaq-repo -video coffee_and_cigarettes \
//	        -action smoking -objects wine_glass,cup -k 5 -compare
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vaq"
	"vaq/internal/ingest"
	"vaq/internal/rvaq"
	"vaq/internal/server"
)

func main() {
	var (
		dirFlag     = flag.String("dir", "vaq-repo", "repository directory")
		videoFlag   = flag.String("video", "", "video name (empty = all videos)")
		actionFlag  = flag.String("action", "", "queried action label")
		objectsFlag = flag.String("objects", "", "comma-separated object labels")
		kFlag       = flag.Int("k", 5, "number of results")
		compareFlag = flag.Bool("compare", false, "also run FA, RVAQ-noSkip and Pq-Traverse")
		jsonFlag    = flag.Bool("json", false, "emit results as JSON in the server's /v1/topk response shape (skips -compare)")
		workersFlag = flag.Int("workers", 0, "parallel per-video executions for all-video queries (0 = GOMAXPROCS, 1 = serial)")
		globalFlag  = flag.Bool("global", false, "rank across the merged repository namespace instead of merging per-video top-ks")
	)
	flag.Parse()
	eo := vaq.ExecOptions{Workers: *workersFlag}

	q := vaq.Query{Action: vaq.Label(*actionFlag)}
	for _, o := range strings.Split(*objectsFlag, ",") {
		if o = strings.TrimSpace(o); o != "" {
			q.Objects = append(q.Objects, vaq.Label(o))
		}
	}
	if err := q.Validate(); err != nil {
		fatal(err)
	}
	repo, err := vaq.OpenRepository(*dirFlag)
	if err != nil {
		fatal(err)
	}

	if *videoFlag == "" {
		run := repo.TopKAllOpts
		if *globalFlag {
			run = repo.TopKGlobalOpts
		}
		results, stats, err := run(q, *kFlag, eo)
		if err != nil {
			fatal(err)
		}
		if *jsonFlag {
			out := server.TopKResponse{
				Results:        []server.TopKEntry{},
				RuntimeUS:      stats.Runtime.Microseconds(),
				CPURuntimeUS:   stats.CPURuntime.Microseconds(),
				RandomAccesses: stats.Accesses.Random,
				Candidates:     stats.Candidates,
			}
			for _, r := range results {
				out.Results = append(out.Results, server.TopKEntry{
					Video: r.Video, Seq: server.Range{Lo: r.Seq.Lo, Hi: r.Seq.Hi}, Score: r.Score,
				})
			}
			emitJSON(out)
			return
		}
		fmt.Printf("top-%d for %v across %v (wall %v, cpu %v, %d random accesses):\n",
			*kFlag, q, repo.Videos(), stats.Runtime.Round(time.Microsecond),
			stats.CPURuntime.Round(time.Microsecond), stats.Accesses.Random)
		for i, r := range results {
			fmt.Printf("  %2d. %-24s clips %v  score %.2f\n", i+1, r.Video, r.Seq, r.Score)
		}
		return
	}

	results, stats, err := repo.TopKOpts(*videoFlag, q, *kFlag, eo)
	if err != nil {
		fatal(err)
	}
	if *jsonFlag {
		out := server.TopKResponse{
			Results:        []server.TopKEntry{},
			RuntimeUS:      stats.Runtime.Microseconds(),
			RandomAccesses: stats.Accesses.Random,
			Candidates:     stats.Candidates,
		}
		for _, r := range results {
			out.Results = append(out.Results, server.TopKEntry{
				Seq: server.Range{Lo: r.Seq.Lo, Hi: r.Seq.Hi}, Score: r.Score,
			})
		}
		emitJSON(out)
		return
	}
	fmt.Printf("top-%d for %v on %s (%v, %d random accesses, |Pq|=%d):\n",
		*kFlag, q, *videoFlag, stats.Runtime.Round(time.Microsecond), stats.Accesses.Random, stats.Candidates)
	for i, r := range results {
		fmt.Printf("  %2d. clips %v  score %.2f\n", i+1, r.Seq, r.Score)
	}
	if !*compareFlag {
		return
	}

	// The comparison needs the raw video metadata.
	vd, err := ingest.Load(*dirFlag + "/" + *videoFlag)
	if err != nil {
		fatal(err)
	}
	baselines := []struct {
		name string
		run  func() (rvaq.Stats, error)
	}{
		{"FA", func() (rvaq.Stats, error) { _, s, err := rvaq.FA(vd, q, *kFlag, rvaq.DefaultOptions()); return s, err }},
		{"RVAQ-noSkip", func() (rvaq.Stats, error) {
			_, s, err := rvaq.NoSkip(vd, q, *kFlag, rvaq.DefaultOptions())
			return s, err
		}},
		{"Pq-Traverse", func() (rvaq.Stats, error) {
			_, s, err := rvaq.PqTraverse(vd, q, *kFlag, rvaq.DefaultOptions())
			return s, err
		}},
	}
	fmt.Println("baselines:")
	for _, b := range baselines {
		stats, err := b.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", b.name, err))
		}
		fmt.Printf("  %-12s %10v  %6d random accesses\n",
			b.name, stats.Runtime.Round(time.Microsecond), stats.Accesses.Random)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqtopk:", err)
	os.Exit(1)
}
