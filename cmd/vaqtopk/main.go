// Command vaqtopk answers an offline top-k query against a repository
// built by vaqingest, comparing RVAQ against the paper's baselines on
// request.
//
//	vaqtopk -dir vaq-repo -video coffee_and_cigarettes \
//	        -action smoking -objects wine_glass,cup -k 5 -compare
//
// With -synth it skips -dir and ingests the named synthetic movies into
// a temporary repository in-process first — combined with -trace the
// span tree covers the full offline path, ingestion included:
//
//	vaqtopk -synth coffee_and_cigarettes,iron_man -scale 0.25 -global -trace
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/infer"
	"vaq/internal/ingest"
	"vaq/internal/resilience"
	"vaq/internal/rvaq"
	"vaq/internal/server"
	"vaq/internal/synth"
	"vaq/internal/trace"
)

func main() {
	var (
		dirFlag      = flag.String("dir", "vaq-repo", "repository directory")
		videoFlag    = flag.String("video", "", "video name (empty = all videos)")
		actionFlag   = flag.String("action", "", "queried action label")
		objectsFlag  = flag.String("objects", "", "comma-separated object labels")
		kFlag        = flag.Int("k", 5, "number of results")
		compareFlag  = flag.Bool("compare", false, "also run FA, RVAQ-noSkip and Pq-Traverse")
		jsonFlag     = flag.Bool("json", false, "emit results as JSON in the server's /v1/topk response shape (skips -compare)")
		workersFlag  = flag.Int("workers", 0, "parallel per-video executions for all-video queries (0 = GOMAXPROCS, 1 = serial)")
		globalFlag   = flag.Bool("global", false, "rank across the merged repository namespace instead of merging per-video top-ks")
		synthFlag    = flag.String("synth", "", "comma-separated synthetic movie names to ingest in-process into a temporary repository (skips -dir)")
		scaleFlag    = flag.Float64("scale", 0.25, "workload scale for -synth ingestion")
		traceFlag    = flag.Bool("trace", false, "record spans across ingestion and the query; print the tree, counters and stage quantiles at exit")
		deadlineFlag = flag.Duration("deadline", 0, "bound the whole query (0 = none)")
		partialFlag  = flag.Bool("partial", false, "on deadline expiry return the best-so-far ranking flagged incomplete instead of failing")
		discountFlag = flag.Float64("discount", 0, "down-weight clips the repository marked degraded at ingest by this factor in (0, 1] and flag matching results (0 = off)")
		hopDiscFlag  = flag.String("hop-discounts", "", "comma-separated per-hop discount factors in [0, 1]: entry h discounts clips whose worst degraded unit came from fallback hop h (mutually exclusive with -discount)")
		batchWFlag   = flag.Duration("batch-window", 0, "micro-batch same-label detector calls during -synth ingestion (0 = off)")
		batchNFlag   = flag.Int("batch-max", infer.DefaultBatchMax, "max units per micro-batched detector call")
		planRFlag    = flag.Int("plan-rate", 0, "coarse-to-fine sampling during -synth ingestion: base rate 1-in-N (0 = dense, 1 = dense through the planner)")
		planLFlag    = flag.Int("plan-levels", 0, "cap the planner's densification ladder (0 = full ladder)")
		expFlag      = flag.Bool("explain", false, "collect a per-query EXPLAIN profile; print the attribution tree after the results (embedded in the document with -json)")
	)
	flag.Parse()
	if *discountFlag < 0 || *discountFlag > 1 {
		fatal(fmt.Errorf("-discount must be in [0, 1], got %v", *discountFlag))
	}
	var hopDiscounts []float64
	if *hopDiscFlag != "" {
		if *discountFlag > 0 {
			fatal(fmt.Errorf("-discount and -hop-discounts are mutually exclusive"))
		}
		for _, s := range strings.Split(*hopDiscFlag, ",") {
			d, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				fatal(fmt.Errorf("-hop-discounts: %w", err))
			}
			if d < 0 || d > 1 {
				fatal(fmt.Errorf("-hop-discounts entries must be in [0, 1], got %v", d))
			}
			hopDiscounts = append(hopDiscounts, d)
		}
	}
	if *batchNFlag <= 0 {
		fatal(fmt.Errorf("-batch-max must be positive, got %d", *batchNFlag))
	}
	if *batchWFlag < 0 {
		fatal(fmt.Errorf("-batch-window must be non-negative, got %v", *batchWFlag))
	}
	planCfg := vaq.PlanConfig{Rate: *planRFlag, Levels: *planLFlag}
	if err := planCfg.Validate(); err != nil {
		fatal(err)
	}

	ctx := context.Background()
	var tr *vaq.Tracer
	var root *trace.Span
	if *traceFlag {
		tr = trace.New(trace.WithCapacity(1 << 16))
		ctx = trace.NewContext(ctx, tr)
		root = tr.StartSpan("vaqtopk", 0)
		ctx = trace.ContextWithSpan(ctx, root)
		defer func() {
			root.End()
			out := io.Writer(os.Stdout)
			if *jsonFlag {
				out = os.Stderr
			}
			fmt.Fprintln(out, "--- trace ---")
			trace.RenderTrees(out, tr.Trees())
			fmt.Fprintln(out, "--- metrics ---")
			tr.WriteVarz(out)
		}()
	}
	eo := vaq.ExecOptions{Workers: *workersFlag, Ctx: ctx, Deadline: *deadlineFlag, Partial: *partialFlag, DegradedDiscount: *discountFlag, HopDiscounts: hopDiscounts}

	q := vaq.Query{Action: vaq.Label(*actionFlag)}
	for _, o := range strings.Split(*objectsFlag, ",") {
		if o = strings.TrimSpace(o); o != "" {
			q.Objects = append(q.Objects, vaq.Label(o))
		}
	}

	var repo *vaq.Repository
	var err error
	if *synthFlag != "" {
		var dens map[string]vaq.Densify
		repo, dens, err = ingestSynth(ctx, *synthFlag, *scaleFlag, *batchWFlag, *batchNFlag, planCfg, &q)
		// In-process ingestion keeps the detectors around, so planned
		// repositories answer with exact scores via densification.
		eo.Densifiers = dens
	} else {
		repo, err = vaq.OpenRepository(*dirFlag)
	}
	if err != nil {
		fatal(err)
	}
	if err := q.Validate(); err != nil {
		fatal(err)
	}

	var ex *vaq.ExplainCollector
	var qstart time.Time
	if *expFlag {
		ex = vaq.NewExplainCollector("topk")
		ex.SetID("cli")
		ex.SetWorkload(*videoFlag)
		ex.SetQuery(fmt.Sprintf("%v", q))
		eo.Explain = ex
		qstart = time.Now()
	}
	// finishExplain stamps the duration and snapshots the profile; nil
	// when -explain is off.
	finishExplain := func() *vaq.ExplainProfile {
		if ex == nil {
			return nil
		}
		ex.SetDurUS(time.Since(qstart).Microseconds())
		p := ex.Profile()
		return &p
	}
	printExplain := func() {
		if p := finishExplain(); p != nil {
			fmt.Println("--- explain ---")
			vaq.RenderExplain(os.Stdout, *p)
		}
	}

	if *videoFlag == "" {
		run := repo.TopKAllOpts
		if *globalFlag {
			run = repo.TopKGlobalOpts
		}
		results, stats, err := run(q, *kFlag, eo)
		if err != nil {
			fatal(err)
		}
		if *jsonFlag {
			out := server.TopKResponse{
				Results:        []server.TopKEntry{},
				RuntimeUS:      stats.Runtime.Microseconds(),
				CPURuntimeUS:   stats.CPURuntime.Microseconds(),
				RandomAccesses: stats.Accesses.Random,
				Candidates:     stats.Candidates,
				Incomplete:     stats.Incomplete,
				DegradedClips:  stats.DegradedClips,
			}
			out.Explain = finishExplain()
			for _, r := range results {
				out.Results = append(out.Results, server.TopKEntry{
					Video: r.Video, Seq: server.Range{Lo: r.Seq.Lo, Hi: r.Seq.Hi}, Score: r.Score, Degraded: r.Degraded,
				})
			}
			emitJSON(out)
			return
		}
		fmt.Printf("top-%d for %v across %v (wall %v, cpu %v, %d random accesses)%s%s%s:\n",
			*kFlag, q, repo.Videos(), stats.Runtime.Round(time.Microsecond),
			stats.CPURuntime.Round(time.Microsecond), stats.Accesses.Random,
			incompleteMark(stats), degradedMark(stats), plannedMark(stats))
		for i, r := range results {
			fmt.Printf("  %2d. %-24s clips %v  score %.2f%s\n", i+1, r.Video, r.Seq, r.Score, degradedFlag(r.Degraded))
		}
		printExplain()
		return
	}

	results, stats, err := repo.TopKOpts(*videoFlag, q, *kFlag, eo)
	if err != nil {
		fatal(err)
	}
	if *jsonFlag {
		out := server.TopKResponse{
			Results:        []server.TopKEntry{},
			RuntimeUS:      stats.Runtime.Microseconds(),
			RandomAccesses: stats.Accesses.Random,
			Candidates:     stats.Candidates,
			Incomplete:     stats.Incomplete,
			DegradedClips:  stats.DegradedClips,
		}
		out.Explain = finishExplain()
		for _, r := range results {
			out.Results = append(out.Results, server.TopKEntry{
				Seq: server.Range{Lo: r.Seq.Lo, Hi: r.Seq.Hi}, Score: r.Score, Degraded: r.Degraded,
			})
		}
		emitJSON(out)
		return
	}
	fmt.Printf("top-%d for %v on %s (%v, %d random accesses, |Pq|=%d)%s%s%s:\n",
		*kFlag, q, *videoFlag, stats.Runtime.Round(time.Microsecond), stats.Accesses.Random, stats.Candidates,
		incompleteMark(stats), degradedMark(stats), plannedMark(stats))
	for i, r := range results {
		fmt.Printf("  %2d. clips %v  score %.2f%s\n", i+1, r.Seq, r.Score, degradedFlag(r.Degraded))
	}
	printExplain()
	if !*compareFlag {
		return
	}

	// The comparison needs the raw video metadata.
	vd, err := ingest.Load(*dirFlag + "/" + *videoFlag)
	if err != nil {
		fatal(err)
	}
	baselines := []struct {
		name string
		run  func() (rvaq.Stats, error)
	}{
		{"FA", func() (rvaq.Stats, error) { _, s, err := rvaq.FA(vd, q, *kFlag, rvaq.DefaultOptions()); return s, err }},
		{"RVAQ-noSkip", func() (rvaq.Stats, error) {
			_, s, err := rvaq.NoSkip(vd, q, *kFlag, rvaq.DefaultOptions())
			return s, err
		}},
		{"Pq-Traverse", func() (rvaq.Stats, error) {
			_, s, err := rvaq.PqTraverse(vd, q, *kFlag, rvaq.DefaultOptions())
			return s, err
		}},
	}
	fmt.Println("baselines:")
	for _, b := range baselines {
		stats, err := b.run()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", b.name, err))
		}
		fmt.Printf("  %-12s %10v  %6d random accesses\n",
			b.name, stats.Runtime.Round(time.Microsecond), stats.Accesses.Random)
	}
}

// ingestSynth builds a temporary repository by ingesting the named
// synthetic movies in-process; with a tracer in ctx the ingestion spans
// land in the same tree as the query's. An empty query is filled from
// the first movie's own Table 2 query. The backing directory is removed
// before returning — the repository keeps every video in memory. With
// planning armed, the returned densifier map completes planned clips
// exactly through the same in-process detectors.
func ingestSynth(ctx context.Context, names string, scale float64, batchWindow time.Duration, batchMax int, planCfg vaq.PlanConfig, q *vaq.Query) (*vaq.Repository, map[string]vaq.Densify, error) {
	tmp, err := os.MkdirTemp("", "vaqtopk-synth-")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(tmp)
	repo, err := vaq.OpenRepository(tmp)
	if err != nil {
		return nil, nil, err
	}
	densifiers := map[string]vaq.Densify{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		qs, err := synth.MovieScaled(name, scale)
		if err != nil {
			return nil, nil, err
		}
		if q.Action == "" && len(q.Objects) == 0 {
			*q = qs.Query
		}
		scene := qs.World.Scene()
		var det detect.ObjectDetector = detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		var rec detect.ActionRecognizer = detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		if batchWindow > 0 {
			// Route ingest invocations through the micro-batcher; results
			// are byte-identical to per-unit calls, so the repository — and
			// therefore the query answer — doesn't change, only the call
			// count. The pass-through resilience wrap restores the plain
			// detector interfaces IngestVideoCtx consumes. The flags were
			// validated above, so construction cannot fail.
			sh := infer.MustNew(infer.Config{BatchWindow: batchWindow, BatchMax: batchMax})
			models := resilience.WrapFallible(
				sh.Object(detect.AsFallibleObject(det)),
				sh.Action(detect.AsFallibleAction(rec)),
				resilience.DefaultPolicy(), resilience.Options{})
			det, rec = models.Det, models.Rec
		}
		truth := qs.World.Truth
		vd, err := vaq.IngestVideoCtx(ctx, det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(),
			vaq.IngestConfig{Workers: runtime.NumCPU(), Plan: planCfg})
		if err != nil {
			return nil, nil, fmt.Errorf("ingest %s: %w", name, err)
		}
		if err := repo.Add(name, vd); err != nil {
			return nil, nil, err
		}
		if vd.Plan != nil {
			d, err := vaq.NewDensifier(vd, det, rec, *q)
			if err != nil {
				return nil, nil, fmt.Errorf("densifier %s: %w", name, err)
			}
			densifiers[name] = d
		}
	}
	if len(densifiers) == 0 {
		return repo, nil, nil
	}
	return repo, densifiers, nil
}

// incompleteMark flags a deadline-truncated ranking in the text output.
func incompleteMark(stats vaq.TopKStats) string {
	if stats.Incomplete {
		return " [INCOMPLETE: deadline fired, scores are lower bounds]"
	}
	return ""
}

// degradedMark summarizes the discount's reach in the text output.
func degradedMark(stats vaq.TopKStats) string {
	if stats.DegradedClips > 0 {
		return fmt.Sprintf(" [%d degraded clips discounted]", stats.DegradedClips)
	}
	return ""
}

// plannedMark summarizes planner-related score handling in the output.
func plannedMark(stats vaq.TopKStats) string {
	switch {
	case stats.Bounded:
		return " [BOUNDED: planned repository without densifier, scores are lower bounds]"
	case stats.DensifiedClips > 0:
		return fmt.Sprintf(" [%d clips densified]", stats.DensifiedClips)
	}
	return ""
}

// degradedFlag marks a single degraded result row.
func degradedFlag(degraded bool) string {
	if degraded {
		return "  [degraded]"
	}
	return ""
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vaqtopk:", err)
	os.Exit(1)
}
