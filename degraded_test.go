package vaq

import (
	"reflect"
	"testing"
	"time"

	"vaq/internal/detect"
	"vaq/internal/fault"
	"vaq/internal/resilience"
	"vaq/internal/synth"
)

// degradedRepo ingests the q2 workload through the resilience wrapper
// under an error burst confined to early units, persists the degraded
// frame/shot sets with the video, and returns the repository re-opened
// from disk — the exact vaqingest → vaqtopk path.
func degradedRepo(t *testing.T) (*Repository, Query) {
	t.Helper()
	qs, err := synth.YouTubeScaled("q2", DefaultGeometry(), 0.2)
	if err != nil {
		t.Fatal(err)
	}
	scene := qs.World.Scene()
	sched, err := fault.Parse(11, "error:0-999:0.7")
	if err != nil {
		t.Fatal(err)
	}
	fdet := fault.NewObject(detect.AsFallibleObject(detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)), sched)
	frec := fault.NewAction(detect.AsFallibleAction(detect.NewSimActionRecognizer(scene, detect.I3D, nil)), sched)
	pol := resilience.Policy{
		MaxRetries:  1,
		BaseBackoff: 20 * time.Microsecond,
		MaxBackoff:  100 * time.Microsecond,
		Seed:        3,
	}
	models := resilience.WrapFallible(fdet, frec, pol, resilience.Options{})
	truth := qs.World.Truth
	vd, err := IngestVideo(models.Det, models.Rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), IngestConfig{})
	if err != nil {
		t.Fatal(err)
	}
	vd.SetDegradedFrames(models.Det.DegradedHops())
	vd.SetDegradedShots(models.Rec.DegradedHops())
	if len(vd.DegradedFrames) == 0 && len(vd.DegradedShots) == 0 {
		t.Fatal("no degraded units under a 70% error burst; the fault injector is not engaged")
	}

	dir := t.TempDir()
	repo, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Add("q2", vd); err != nil {
		t.Fatal(err)
	}
	// Re-open from disk: the degraded sets must survive the manifest
	// round-trip, not just ride the in-memory copy.
	reopened, err := OpenRepository(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := reopened.repo.Video("q2")
	if !ok {
		t.Fatal("reopened repository lost the video")
	}
	if !reflect.DeepEqual(loaded.DegradedFrames, vd.DegradedFrames) ||
		!reflect.DeepEqual(loaded.DegradedShots, vd.DegradedShots) {
		t.Fatalf("degraded sets did not survive the disk round-trip:\nframes %v vs %v\nshots %v vs %v",
			loaded.DegradedFrames, vd.DegradedFrames, loaded.DegradedShots, vd.DegradedShots)
	}
	// The per-unit fallback hops must survive too — hop-aware
	// discounting reads them from the manifest, never from memory.
	if !reflect.DeepEqual(loaded.DegradedFrameHops, vd.DegradedFrameHops) ||
		!reflect.DeepEqual(loaded.DegradedShotHops, vd.DegradedShotHops) {
		t.Fatalf("degraded hops did not survive the disk round-trip:\nframes %v vs %v\nshots %v vs %v",
			loaded.DegradedFrameHops, vd.DegradedFrameHops, loaded.DegradedShotHops, vd.DegradedShotHops)
	}
	return reopened, qs.Query
}

// TestDegradedIngestPersistsAndDiscounts is the acceptance path for
// degraded-unit persistence: ingesting under a fault schedule produces
// a repository whose degraded clips are visible to offline top-k, and
// the same query with the discount on down-weights and flags exactly
// the sequences built on them while leaving clean sequences untouched.
func TestDegradedIngestPersistsAndDiscounts(t *testing.T) {
	repo, q := degradedRepo(t)
	const k = 8

	off, offStats, err := repo.TopKOpts("q2", q, k, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	on, onStats, err := repo.TopKOpts("q2", q, k, ExecOptions{DegradedDiscount: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	if offStats.DegradedClips != 0 {
		t.Errorf("discount off: stats count %d degraded clips, want 0", offStats.DegradedClips)
	}
	for _, r := range off {
		if r.Degraded {
			t.Errorf("discount off: result %v flagged degraded", r.Seq)
		}
	}
	if onStats.DegradedClips == 0 {
		t.Fatal("discount on: repository's degraded clips invisible to top-k")
	}

	offScore := make(map[Sequence]float64, len(off))
	for _, r := range off {
		offScore[r.Seq] = r.Score
	}
	flagged := 0
	for _, r := range on {
		raw, shared := offScore[r.Seq]
		if !r.Degraded {
			if shared && r.Score != raw {
				t.Errorf("clean sequence %v rescored under the discount: %v vs %v", r.Seq, r.Score, raw)
			}
			continue
		}
		flagged++
		if shared && r.Score >= raw {
			t.Errorf("degraded sequence %v not down-weighted: %v vs raw %v", r.Seq, r.Score, raw)
		}
	}
	if flagged == 0 {
		t.Error("discount on: no ranked sequence flagged degraded (raise k or the fault rate if the workload changed)")
	}
}

// TestHopDiscountsEndToEnd drives the per-hop discount table down the
// same vaqingest → vaqtopk path: the persisted hops are visible to
// offline top-k, degraded sequences are down-weighted and flagged, and
// mixing the flat and per-hop forms is rejected.
func TestHopDiscountsEndToEnd(t *testing.T) {
	repo, q := degradedRepo(t)
	const k = 8

	off, _, err := repo.TopKOpts("q2", q, k, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	on, onStats, err := repo.TopKOpts("q2", q, k, ExecOptions{HopDiscounts: []float64{0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if onStats.DegradedClips == 0 {
		t.Fatal("hop table on: repository's degraded clips invisible to top-k")
	}
	offScore := make(map[Sequence]float64, len(off))
	for _, r := range off {
		offScore[r.Seq] = r.Score
	}
	flagged := 0
	for _, r := range on {
		raw, shared := offScore[r.Seq]
		if r.Degraded {
			flagged++
			if shared && r.Score >= raw {
				t.Errorf("degraded sequence %v not down-weighted: %v vs raw %v", r.Seq, r.Score, raw)
			}
		} else if shared && r.Score != raw {
			t.Errorf("clean sequence %v rescored under the hop table: %v vs %v", r.Seq, r.Score, raw)
		}
	}
	if flagged == 0 {
		t.Error("hop table on: no ranked sequence flagged degraded")
	}

	if _, _, err := repo.TopKOpts("q2", q, 3,
		ExecOptions{DegradedDiscount: 0.5, HopDiscounts: []float64{0.3}}); err == nil {
		t.Error("mixing DegradedDiscount and HopDiscounts accepted, want error")
	}
	if _, _, err := repo.TopKOpts("q2", q, 3, ExecOptions{HopDiscounts: []float64{1.2}}); err == nil {
		t.Error("hop discount entry above 1 accepted, want error")
	}
}

// TestDegradedDiscountValidation pins the option's domain: a discount
// outside (0, 1] is an error, 0 is off.
func TestDegradedDiscountValidation(t *testing.T) {
	repo, q := degradedRepo(t)
	for _, bad := range []float64{-0.1, 1.01} {
		if _, _, err := repo.TopKOpts("q2", q, 3, ExecOptions{DegradedDiscount: bad}); err == nil {
			t.Errorf("discount %v accepted, want error", bad)
		}
	}
	if _, _, err := repo.TopKOpts("q2", q, 3, ExecOptions{}); err != nil {
		t.Errorf("discount 0 (off) rejected: %v", err)
	}
}
