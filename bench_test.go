// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) at bench scale, one testing.B target per experiment.
// `go test -bench=. -benchmem` reproduces the full grid;
// `cmd/vaqbench` prints the paper-scale rows.
package vaq_test

import (
	"testing"

	"vaq/internal/experiments"
)

// benchCtx shrinks the workloads so a full -bench=. pass stays in the
// minutes range; the shapes (who wins, by what factor) are preserved.
func benchCtx() *experiments.Context {
	c := experiments.NewContext(nil)
	c.Scale = 0.15
	return c
}

// BenchmarkFig2 regenerates Figure 2: F1 of SVAQ vs SVAQD across the
// initial-background-probability grid.
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: SVAQ vs SVAQD on q1..q12.
func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 regenerates Table 3: predicate-variation F1.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table 4: detection-model F1.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5 regenerates Table 5: detector FPR with/without SVAQD.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Table5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4And5 regenerates Figures 4–5: the clip-size sweep.
func BenchmarkFig4And5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Fig4And5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnlineRuntime regenerates the §5.2 runtime decomposition.
func BenchmarkOnlineRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().OnlineRuntime(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6 regenerates Table 6: offline methods on Coffee and
// Cigarettes across K (file-backed tables; accesses are disk reads).
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Table6(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7 regenerates Table 7: offline methods on q1, q2 at K=5.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Table7(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8 regenerates Table 8: RVAQ speedup over Pq-Traverse on
// the three movies across K.
func BenchmarkTable8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Table8(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationShortCircuit measures the model-invocation savings of
// Algorithm 2's predicate short-circuiting (DESIGN.md §4).
func BenchmarkAblationShortCircuit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().AblationShortCircuit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationKernelU sweeps SVAQD's estimator kernel scale.
func BenchmarkAblationKernelU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().AblationKernelU(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCritValue compares the Naus closed form against the
// Monte-Carlo critical-value search.
func BenchmarkAblationCritValue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().AblationCritValue(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDrift measures the SVAQ/SVAQD gap under a sudden background
// change (the §3.3 motivation; companion to Figure 2).
func BenchmarkDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := benchCtx().Drift(); err != nil {
			b.Fatal(err)
		}
	}
}
