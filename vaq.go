// Package vaq is a Go implementation of "Querying For Actions Over
// Videos" (Chao and Koudas, EDBT 2024): declarative queries over videos
// whose predicates combine an action with object presence, answered
//
//   - online over streams with the SVAQ / SVAQD algorithms (scan-
//     statistics clip indicators with optional dynamic background
//     estimation), and
//   - offline over pre-ingested repositories with the RVAQ top-k
//     algorithm (bounded, skip-pruned ranking over clip score tables).
//
// The package is a thin facade over the internal engine. A typical
// online session:
//
//	plan, _ := vaq.ParseQuery(`SELECT MERGE(clipID) AS Sequence
//	    FROM (PROCESS cam PRODUCE clipID, obj USING ObjectDetector,
//	          act USING ActionRecognizer)
//	    WHERE act = 'blowing_leaves' AND obj.include('car')`)
//	stream, _ := vaq.NewStream(plan, det, rec, vaq.DefaultGeometry(), vaq.StreamConfig{Dynamic: true})
//	seqs, _ := stream.Run(nclips)
//
// and an offline one:
//
//	repo, _ := vaq.OpenRepository(dir)
//	results, stats, _ := repo.TopK("movie", query, 5)
//
// Detection models plug in through the ObjectDetector / ActionRecognizer
// interfaces; the repository ships calibrated simulated models (see
// package detect) standing in for Mask R-CNN, YOLOv3, I3D and
// CenterTrack.
package vaq

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/explain"
	"vaq/internal/infer"
	"vaq/internal/ingest"
	"vaq/internal/interval"
	"vaq/internal/plan"
	"vaq/internal/pool"
	"vaq/internal/rvaq"
	"vaq/internal/score"
	"vaq/internal/svaq"
	"vaq/internal/temporal"
	"vaq/internal/trace"
	"vaq/internal/video"
	"vaq/internal/vql"
)

// Re-exported vocabulary types.
type (
	// Label names an object type or action category.
	Label = annot.Label
	// Query is a conjunctive query: one action plus object predicates.
	Query = annot.Query
	// Geometry fixes the frame/shot/clip structure.
	Geometry = video.Geometry
	// Sequence is an inclusive clip-id range — one query result.
	Sequence = interval.Interval
	// Sequences is a normalized set of result sequences.
	Sequences = interval.Set
	// ObjectDetector and ActionRecognizer are the pluggable model
	// interfaces.
	ObjectDetector = detect.ObjectDetector
	// ActionRecognizer recognizes actions on shots.
	ActionRecognizer = detect.ActionRecognizer
	// StreamConfig tunes the online engine (SVAQ when Dynamic is false,
	// SVAQD when true).
	StreamConfig = svaq.Config
	// PlanConfig arms the coarse-to-fine adaptive sampling planner
	// (StreamConfig.Plan, IngestConfig-level planning and the vaqd
	// -plan-rate/-plan-levels flags all speak this type).
	PlanConfig = plan.Config
	// PlanStats reports planner outcomes (clips decided sparsely vs
	// densified, units sampled vs dense cost).
	PlanStats = plan.Stats
	// Plan is a compiled VQL statement.
	Plan = vql.Plan
	// TopKResult is one ranked offline result.
	TopKResult = rvaq.SeqResult
	// TopKStats reports the cost of an offline query.
	TopKStats = rvaq.Stats
)

// DefaultGeometry mirrors the paper's Figure 1 structure: 50-frame
// clips of five 10-frame shots at 30 fps.
func DefaultGeometry() Geometry { return video.DefaultGeometry() }

// ParseQuery parses and compiles a VQL statement.
func ParseQuery(src string) (*Plan, error) { return vql.ParseAndCompile(src) }

// Stream runs an online query over a clip stream.
type Stream struct {
	simple *svaq.Engine
	cnf    *svaq.CNFEngine
}

// NewStream builds the online engine for a compiled plan. Plans that
// are pure conjunctions run the paper's SVAQ/SVAQD engine — with any
// rel(...) predicates attached as relation trackers (footnote 2); plans
// with disjunctions or multiple actions run the CNF extension engine
// (footnotes 3–4). Relation predicates inside disjunctions are not
// supported.
func NewStream(plan *Plan, det ObjectDetector, rec ActionRecognizer, geom Geometry, cfg StreamConfig, opts ...StreamOption) (*Stream, error) {
	if plan == nil {
		return nil, fmt.Errorf("vaq: nil plan")
	}
	det, rec = applyStreamOptions(det, rec, opts)
	if q, relPreds, ok := plan.SimpleQueryWithRelations(); ok {
		eng, err := svaq.New(q, det, rec, geom, cfg)
		if err != nil {
			return nil, err
		}
		if len(relPreds) > 0 {
			rels := make([]detect.Relation, 0, len(relPreds))
			for _, rp := range relPreds {
				kind, err := detect.ParseRelationKind(rp.RelKind)
				if err != nil {
					return nil, err
				}
				rels = append(rels, detect.Relation{A: rp.RelA, B: rp.RelB, Kind: kind})
			}
			if err := eng.WithRelations(rels); err != nil {
				return nil, err
			}
		}
		return &Stream{simple: eng}, nil
	}
	clauses := make([]svaq.Clause, 0, len(plan.CNF))
	for _, clause := range plan.CNF {
		var cl svaq.Clause
		for _, pred := range clause {
			switch pred.Kind {
			case vql.ActionPred:
				cl.Actions = append(cl.Actions, pred.Label)
			case vql.ObjectPred:
				cl.Objects = append(cl.Objects, pred.Label)
			default:
				return nil, fmt.Errorf("vaq: relation predicates are not supported inside disjunctions")
			}
		}
		clauses = append(clauses, cl)
	}
	eng, err := svaq.NewCNF(clauses, det, rec, geom, cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{cnf: eng}, nil
}

// NewStreamQuery builds the online engine directly from a conjunctive
// query, bypassing VQL.
func NewStreamQuery(q Query, det ObjectDetector, rec ActionRecognizer, geom Geometry, cfg StreamConfig, opts ...StreamOption) (*Stream, error) {
	det, rec = applyStreamOptions(det, rec, opts)
	eng, err := svaq.New(q, det, rec, geom, cfg)
	if err != nil {
		return nil, err
	}
	return &Stream{simple: eng}, nil
}

// StreamOption configures how a Stream reaches its models.
type StreamOption func(*streamOptions)

type streamOptions struct {
	si *SharedInference
}

// WithSharedInference routes the stream's model invocations through a
// SharedInference domain: concurrent streams wrapping the same backends
// coalesce duplicate in-flight calls, share the memoized score cache
// and ride the same micro-batches. Streams passing the same
// SharedInference must wrap interchangeable backends (same scene per
// backend name).
func WithSharedInference(si *SharedInference) StreamOption {
	return func(o *streamOptions) { o.si = si }
}

func applyStreamOptions(det ObjectDetector, rec ActionRecognizer, opts []StreamOption) (ObjectDetector, ActionRecognizer) {
	var o streamOptions
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if o.si != nil {
		det = o.si.WrapDetector(det)
		rec = o.si.WrapRecognizer(rec)
	}
	return det, rec
}

// SharedInferenceConfig sizes a SharedInference domain; see
// docs/INFERENCE.md for tuning guidance. The zero value enables dedup
// only (no cache, no batching).
type SharedInferenceConfig struct {
	// CacheCapacity bounds the memoized score cache in entries (one per
	// (backend, unit, label-set) key); <= 0 disables the cache.
	CacheCapacity int
	// BatchWindow holds the first invocation of a micro-batch open
	// waiting for same-label-set companions; <= 0 disables batching.
	BatchWindow time.Duration
	// BatchMax caps units per vectorized call (default 16).
	BatchMax int
	// Tracer receives the infer.* counters and stage sketches.
	Tracer *Tracer
}

// InferenceStats snapshots a SharedInference domain's counters.
type InferenceStats = infer.Stats

// SharedInference is a shared-inference domain for library users: one
// cache, one dedup group and one batch accumulator shared by every
// stream built with WithSharedInference. The serving daemon builds its
// own domains per (workload, scale, model) — this facade is for
// embedding the engines directly.
type SharedInference struct {
	sh  *infer.Shared
	mu  sync.Mutex
	obj map[string]*infer.ObjectFlight
	act map[string]*infer.ActionFlight
}

// NewSharedInference builds a domain from cfg. Invalid batching
// parameters (a negative BatchMax or BatchWindow) are configuration
// bugs and are rejected here, before any stream is built on the
// domain.
func NewSharedInference(cfg SharedInferenceConfig) (*SharedInference, error) {
	sh, err := infer.New(infer.Config{
		CacheCapacity: cfg.CacheCapacity,
		BatchWindow:   cfg.BatchWindow,
		BatchMax:      cfg.BatchMax,
		Tracer:        cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	return &SharedInference{
		sh:  sh,
		obj: make(map[string]*infer.ObjectFlight),
		act: make(map[string]*infer.ActionFlight),
	}, nil
}

// Stats snapshots the domain's hit/miss/coalesce/batch counters.
func (si *SharedInference) Stats() InferenceStats { return si.sh.Stats() }

// WrapDetector routes det through the domain. The first detector seen
// under each Name() becomes the domain's backend for that name; later
// detectors with the same name share its flight, cache entries and
// batches (they must be interchangeable).
func (si *SharedInference) WrapDetector(det ObjectDetector) ObjectDetector {
	si.mu.Lock()
	defer si.mu.Unlock()
	f, ok := si.obj[det.Name()]
	if !ok {
		backend := si.sh.Object(detect.AsFallibleObject(det))
		f = si.sh.ObjectFlight(det.Name(), infer.FallibleObjectSource(backend))
		si.obj[det.Name()] = f
	}
	return f.Bind(context.Background())
}

// WrapRecognizer routes rec through the domain (see WrapDetector).
func (si *SharedInference) WrapRecognizer(rec ActionRecognizer) ActionRecognizer {
	si.mu.Lock()
	defer si.mu.Unlock()
	f, ok := si.act[rec.Name()]
	if !ok {
		backend := si.sh.Action(detect.AsFallibleAction(rec))
		f = si.sh.ActionFlight(rec.Name(), infer.FallibleActionSource(backend))
		si.act[rec.Name()] = f
	}
	return f.Bind(context.Background())
}

// Tracer re-exports the observability tracer (package internal/trace):
// bounded span retention, named counters and per-stage latency sketches.
// A nil *Tracer is valid everywhere and records nothing.
type Tracer = trace.Tracer

// NewTracer builds a tracer with the default span capacity.
func NewTracer() *Tracer { return trace.New() }

// AttachTrace wires the stream to a tracer: every subsequent clip
// evaluation records an "svaq.clip" span (with one child span per
// evaluated predicate) under the given parent, bumps the detector
// invocation counters and feeds the "svaq.clip" stage sketch. A nil
// tracer detaches nothing and records nothing. Call before ProcessClip.
func (s *Stream) AttachTrace(tr *Tracer, parent trace.SpanID) {
	if s.simple != nil {
		s.simple.AttachTrace(tr, parent)
		return
	}
	s.cnf.AttachTrace(tr, parent)
}

// ExplainCollector accumulates one query's EXPLAIN profile (package
// internal/explain): every settled clip attributed to its decision
// source, every detector invocation to the layer that issued it, and —
// for top-k — the τ_top / B_lo^K bound trajectory. A nil
// *ExplainCollector is valid everywhere and records nothing, so
// collection costs only nil checks when off.
type ExplainCollector = explain.Collector

// ExplainProfile is one query's assembled EXPLAIN record; see
// docs/EXPLAIN.md for the schema and decision taxonomy.
type ExplainProfile = explain.Profile

// NewExplainCollector builds a collector for one query. kind labels the
// profile: "online" for stream sessions, "topk" for offline queries.
func NewExplainCollector(kind string) *ExplainCollector { return explain.NewCollector(kind) }

// RenderExplain writes a profile as the human-readable tree the CLIs
// print under -explain.
func RenderExplain(w io.Writer, p ExplainProfile) { explain.Render(w, p) }

// AttachExplain wires the stream to an EXPLAIN collector: every
// subsequent clip evaluation attributes its outcome and detector units
// to the profile. A nil collector records nothing. Call before
// ProcessClip.
func (s *Stream) AttachExplain(c *ExplainCollector) {
	if s.simple != nil {
		s.simple.AttachExplain(c)
		return
	}
	s.cnf.AttachExplain(c)
}

// ProcessClip evaluates the next clip (fed in order from 0) and reports
// whether it satisfies the query.
func (s *Stream) ProcessClip(c int) (bool, error) {
	if s.simple != nil {
		res, err := s.simple.ProcessClip(video.ClipIdx(c))
		return res.Positive, err
	}
	return s.cnf.ProcessClip(video.ClipIdx(c))
}

// Run processes clips 0..nclips−1 and returns the result sequences.
func (s *Stream) Run(nclips int) (Sequences, error) {
	if s.simple != nil {
		return s.simple.Run(nclips)
	}
	return s.cnf.Run(nclips)
}

// Results returns the result sequences over the clips processed so far.
func (s *Stream) Results() Sequences {
	if s.simple != nil {
		return s.simple.Sequences()
	}
	return s.cnf.Sequences()
}

// ClipsProcessed returns the number of clips consumed so far — the
// next clip index ProcessClip expects. Serving layers use this to
// report session progress without driving the stream.
func (s *Stream) ClipsProcessed() int {
	if s.simple != nil {
		return s.simple.ClipsProcessed()
	}
	return s.cnf.ClipsProcessed()
}

// Invocations returns the total model invocations spent so far (frame
// detections plus shot recognitions).
func (s *Stream) Invocations() int {
	if s.simple != nil {
		return s.simple.Invocations()
	}
	return s.cnf.Invocations()
}

// CriticalValues returns the current per-object critical values and the
// action critical value of the scan statistic (§3.2). For CNF plans —
// which track per-label critical values internally — it returns
// (nil, 0).
func (s *Stream) CriticalValues() (map[Label]int, int) {
	if s.simple == nil {
		return nil, 0
	}
	return s.simple.CriticalValues()
}

// Engine exposes the underlying conjunctive engine for diagnostics
// (critical values, background probabilities); nil for CNF plans.
func (s *Stream) Engine() *svaq.Engine { return s.simple }

// PlanStats reports the adaptive sampling planner's outcomes so far;
// the zero value when StreamConfig.Plan is disabled.
func (s *Stream) PlanStats() PlanStats {
	if s.simple != nil {
		return s.simple.PlanStats()
	}
	return s.cnf.PlanStats()
}

// SequencePair is one composite temporal match between two queries'
// result sequences.
type SequencePair = temporal.Pair

// Then pairs result sequences of two queries where a b-sequence starts
// within maxGap clips after an a-sequence ends — composing actions over
// time, the §7 future-work direction ("loading, then driving off").
func Then(a, b Sequences, maxGap int) []SequencePair { return temporal.Then(a, b, maxGap) }

// During pairs b-sequences fully contained in an a-sequence.
func During(a, b Sequences) []SequencePair { return temporal.During(a, b) }

// OverlapSeqs pairs sequences sharing at least minOverlap clips.
func OverlapSeqs(a, b Sequences, minOverlap int) []SequencePair {
	return temporal.Overlap(a, b, minOverlap)
}

// SpanOf merges composite pairs into the single clip ranges they cover.
func SpanOf(pairs []SequencePair) Sequences { return temporal.Spans(pairs) }

// IngestConfig tunes the offline ingestion phase.
type IngestConfig = ingest.Config

// VideoData is one ingested video's materialized metadata.
type VideoData = ingest.VideoData

// IngestVideo runs the one-time ingestion phase (§4.2) over a video:
// per-label clip score tables and individual sequences for every label
// the models support.
func IngestVideo(det ObjectDetector, rec ActionRecognizer, meta video.Meta, objLabels, actLabels []Label, cfg IngestConfig) (*VideoData, error) {
	return ingest.Video(det, rec, meta, objLabels, actLabels, cfg)
}

// IngestVideoCtx is IngestVideo with cancellation and tracing: when ctx
// carries a tracer (trace.NewContext), the run records "ingest.video" /
// "ingest.infer" / "ingest.stats" spans and the detector invocation
// counters.
func IngestVideoCtx(ctx context.Context, det ObjectDetector, rec ActionRecognizer, meta video.Meta, objLabels, actLabels []Label, cfg IngestConfig) (*VideoData, error) {
	return ingest.VideoCtx(ctx, det, rec, meta, objLabels, actLabels, cfg)
}

// TopKVideo runs RVAQ directly against one ingested video's metadata
// (no repository needed).
func TopKVideo(vd *VideoData, q Query, k int) ([]TopKResult, TopKStats, error) {
	return rvaq.TopK(vd, q, k, rvaq.DefaultOptions())
}

// Repository is a directory of ingested videos answering ad-hoc top-k
// queries.
type Repository struct {
	repo *ingest.Repository
}

// OpenRepository opens (or creates) a repository directory.
func OpenRepository(dir string) (*Repository, error) {
	r, err := ingest.OpenRepository(dir)
	if err != nil {
		return nil, err
	}
	return &Repository{repo: r}, nil
}

// Add persists an ingested video into the repository.
func (r *Repository) Add(name string, vd *VideoData) error { return r.repo.Add(name, vd) }

// Remove deletes a video from the repository.
func (r *Repository) Remove(name string) error { return r.repo.Remove(name) }

// Videos lists the repository's video names.
func (r *Repository) Videos() []string { return r.repo.Names() }

// ErrVideoNotFound reports that a named video has no metadata in the
// repository — either it was never added, or a concurrent Remove won
// the race after the video list was snapshotted.
var ErrVideoNotFound = errors.New("vaq: video not in repository")

// WorkerPool is a bounded, context-aware worker semaphore. The serving
// daemon shares one pool between its online sessions and the offline
// query paths so both compete for the same concurrency budget.
type WorkerPool = pool.Pool

// NewWorkerPool sizes a pool; n <= 0 picks runtime.GOMAXPROCS(0).
func NewWorkerPool(n int) *WorkerPool { return pool.New(n) }

// ExecOptions tunes the offline execution layer: which context bounds
// a query and how its per-video work fans out.
type ExecOptions struct {
	// Ctx cancels the query between algorithm iterations; nil means
	// context.Background().
	Ctx context.Context
	// Workers bounds the fan-out when Pool is nil: 0 picks
	// runtime.GOMAXPROCS(0); 1 runs sequentially.
	Workers int
	// Pool, when non-nil, draws worker slots from a shared semaphore
	// instead of a private one, so offline queries compete with other
	// work for the same bounded concurrency (the serving daemon passes
	// its session pool here).
	Pool *WorkerPool
	// Deadline bounds the whole query (pool wait included); 0 means no
	// deadline beyond what Ctx already carries.
	Deadline time.Duration
	// Partial turns a deadline expiry into a partial answer instead of
	// an error: the query returns the best-so-far ranking with
	// TopKStats.Incomplete set (see rvaq.Options.Partial). A query that
	// never got to run (deadline spent waiting for a worker slot)
	// returns empty results, still flagged Incomplete.
	Partial bool
	// Densifiers supplies per-video exact-score completion on planned
	// repositories (metadata ingested with IngestConfig.Plan): keyed by
	// video name, each recomputes one clip's exact score from the source
	// video (see NewDensifier). With a video's densifier present its
	// top-k results are exact; without one, planned runs return sound
	// lower-bound rankings with TopKStats.Bounded set. The merged
	// sequential global path dispatches through the clip-id namespace
	// and requires a densifier for every video to arm at all.
	Densifiers map[string]Densify
	// DegradedDiscount, in (0, 1], down-weights clips the repository
	// marked degraded at ingest time (their model outputs came from the
	// resilience fallback chain): each degraded clip's score is
	// multiplied by (1 − DegradedDiscount) and matching results carry
	// TopKResult.Degraded. 0 disables.
	DegradedDiscount float64
	// HopDiscounts replaces the flat DegradedDiscount with a per-hop
	// table: entry h−1 discounts clips whose worst degraded unit was
	// served by fallback hop h, so lightly-degraded clips keep more of
	// their score than prior-only ones. Hops past the table clamp to
	// the last entry; units with no recorded hop take the worst entry.
	// Mutually exclusive with DegradedDiscount.
	HopDiscounts []float64
	// Explain, when non-nil, collects the query's EXPLAIN profile
	// (bound trajectory, pruning, cache and access attribution). Global
	// and multi-video paths share the one collector across shards.
	Explain *ExplainCollector
	// Bound, when non-nil, joins the query to an external B_lo^K bound
	// exchange — the hook the sharded serving tier uses to let separate
	// vaqd processes prune each other (docs/SHARDING.md): the run
	// publishes its top-k lower bounds into the exchange and prunes
	// with its Bound(), which a coordinator may have raised from remote
	// shards' progress via BoundExchange.Raise. Bounds only travel
	// through the exchange conservatively, so results are identical
	// with or without it. The parallel global path uses the exchange
	// directly as its cross-video bound (instead of a private one); the
	// merged and single-video paths join it as one shard.
	Bound *BoundExchange
}

func (eo ExecOptions) ctx() context.Context {
	if eo.Ctx == nil {
		return context.Background()
	}
	return eo.Ctx
}

// queryCtx applies the deadline (if any) on top of the base context;
// call once per query entry point and defer the cancel.
func (eo ExecOptions) queryCtx() (context.Context, context.CancelFunc) {
	if eo.Deadline > 0 {
		return context.WithTimeout(eo.ctx(), eo.Deadline)
	}
	return eo.ctx(), func() {}
}

// BoundExchange is a cross-shard B_lo^K bound exchange
// (rvaq.GlobalBound): executions joined to one exchange publish the
// lower bounds of their current top-k and prune with the k-th largest
// bound across every participant. The serving tier generalizes it over
// the wire — each shard process owns one exchange per in-flight query
// and a coordinator folds remote shards' exported bounds in through
// Raise. All methods are safe for concurrent use.
type BoundExchange = rvaq.GlobalBound

// NewBoundExchange builds an exchange for a top-k query.
func NewBoundExchange(k int) *BoundExchange { return rvaq.NewGlobalBound(k) }

// Densify recomputes one clip's exact score from the source video — the
// completion step of a top-k over a planned repository. Build one with
// NewDensifier.
type Densify = func(cid int32) (float64, error)

// NewDensifier builds a clip densifier for one video of a planned
// repository: given the same detectors the ingest ran (wrap them in a
// SharedInference so re-reads of already-sampled units hit the score
// cache), it recomputes the queried predicates' exact clip score from
// every unit. Pass it through ExecOptions.Densifiers.
func NewDensifier(vd *VideoData, det ObjectDetector, rec ActionRecognizer, q Query) (Densify, error) {
	return ingest.NewDensifier(vd, det, rec, q, score.Functions{})
}

// rvaqOptions builds the per-execution rvaq options for one video.
func (eo ExecOptions) rvaqOptions(videoName string) rvaq.Options {
	opts := rvaq.DefaultOptions()
	opts.Partial = eo.Partial
	opts.DegradedDiscount = eo.DegradedDiscount
	opts.HopDiscounts = eo.HopDiscounts
	opts.Densify = eo.Densifiers[videoName]
	opts.Explain = eo.Explain
	// An external exchange joins this execution as shard 0; the
	// parallel global path overrides both fields per video.
	opts.Bound = eo.Bound
	return opts
}

// partialOnDeadline converts a deadline expiry into the empty partial
// result when Partial is set: the query never produced a ranking (e.g.
// the deadline fired while queued for a worker slot), which is the
// degenerate incomplete answer, not a failure.
func (eo ExecOptions) partialOnDeadline(err error, stats *TopKStats) (handled bool) {
	if !eo.Partial || !errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	stats.Incomplete = true
	return true
}

// workers resolves the effective fan-out width.
func (eo ExecOptions) workers() int {
	if eo.Pool != nil {
		return eo.Pool.Cap()
	}
	if eo.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return eo.Workers
}

func (eo ExecOptions) pool() *WorkerPool {
	if eo.Pool != nil {
		return eo.Pool
	}
	return pool.New(eo.workers())
}

// TopK runs RVAQ against one video of the repository.
func (r *Repository) TopK(videoName string, q Query, k int) ([]TopKResult, TopKStats, error) {
	return r.TopKOpts(videoName, q, k, ExecOptions{})
}

// TopKOpts is TopK under an execution context: the run holds one slot
// of the worker pool (if any) and honours cancellation.
func (r *Repository) TopKOpts(videoName string, q Query, k int, eo ExecOptions) ([]TopKResult, TopKStats, error) {
	vd, ok := r.repo.Video(videoName)
	if !ok {
		return nil, TopKStats{}, fmt.Errorf("%w: %q", ErrVideoNotFound, videoName)
	}
	var (
		res   []TopKResult
		stats TopKStats
	)
	ctx, cancel := eo.queryCtx()
	defer cancel()
	err := eo.pool().Do(ctx, func() error {
		var err error
		res, stats, err = rvaq.TopKCtx(ctx, vd, q, k, eo.rvaqOptions(videoName))
		return err
	})
	if err != nil && eo.partialOnDeadline(err, &stats) {
		err = nil
	}
	return res, stats, err
}

// VideoTopKResult tags a result with its video.
type VideoTopKResult struct {
	Video string
	TopKResult
}

// mergedDensifier maps merged clip ids back to (video, local clip) and
// dispatches to that video's densifier. It arms only when every video
// has one — with a partial map some clips would complete exactly and
// others not, which the finishing pass cannot distinguish.
func mergedDensifier(m *ingest.Merged, ds map[string]Densify) Densify {
	if len(ds) == 0 {
		return nil
	}
	for _, s := range m.Spans {
		if ds[s.Name] == nil {
			return nil
		}
	}
	return func(cid int32) (float64, error) {
		name, local, ok := m.Locate(int(cid))
		if !ok {
			return 0, nil // gap clip between videos: absent everywhere
		}
		return ds[name](int32(local))
	}
}

// TopKGlobal ranks result sequences across the whole repository (§4.2:
// "associating a video identifier to each clip identifier") and maps
// them back to (video, local range). It is TopKGlobalOpts with the
// default execution options (GOMAXPROCS-wide fan-out).
func (r *Repository) TopKGlobal(q Query, k int) ([]VideoTopKResult, TopKStats, error) {
	return r.TopKGlobalOpts(q, k, ExecOptions{})
}

// TopKGlobalOpts runs the repository-wide ranked query. Sequentially
// (Workers == 1) it merges every video's metadata into one clip-id
// namespace and runs RVAQ once, so bounds and skip set prune globally.
// In parallel it runs one shard-local TBClip iterator per video with a
// periodic cross-shard exchange of the global B_lo^K, so shards prune
// each other; the exchanged bounds are conservative and the merged
// ranking is identical to the sequential run's.
func (r *Repository) TopKGlobalOpts(q Query, k int, eo ExecOptions) ([]VideoTopKResult, TopKStats, error) {
	names := r.repo.Names()
	if len(names) == 0 {
		// An empty repository has no labels materialized for any query.
		// Shard tiers rely on this mapping: a shard that owns no videos
		// answers like a video span with the queried labels absent, so
		// the coordinator merges it as a no-contribution, not a failure.
		return nil, TopKStats{}, fmt.Errorf("vaq: repository has no videos: %w", ingest.ErrNotIngested)
	}
	if eo.workers() <= 1 || len(names) <= 1 {
		return r.topKGlobalMerged(names, q, k, eo)
	}
	return r.topKGlobalSharded(names, q, k, eo)
}

// topKGlobalMerged is the sequential reference: one RVAQ execution over
// the merged clip-id namespace.
func (r *Repository) topKGlobalMerged(names []string, q Query, k int, eo ExecOptions) ([]VideoTopKResult, TopKStats, error) {
	ctx, cancel := eo.queryCtx()
	defer cancel()
	ctx, gspan := trace.Start(ctx, "topk.global")
	gspan.SetAttr("mode", "merged")
	gspan.SetInt("videos", int64(len(names)))
	defer gspan.End()
	videos := make([]*ingest.VideoData, 0, len(names))
	for _, n := range names {
		vd, ok := r.repo.Video(n)
		if !ok {
			return nil, TopKStats{}, fmt.Errorf("%w: %q", ErrVideoNotFound, n)
		}
		videos = append(videos, vd)
	}
	merged, err := ingest.Merge(videos, names)
	if err != nil {
		return nil, TopKStats{}, err
	}
	mopts := eo.rvaqOptions("")
	mopts.Densify = mergedDensifier(merged, eo.Densifiers)
	res, stats, err := rvaq.TopKCtx(ctx, merged.VideoData, q, k, mopts)
	if err != nil {
		return nil, stats, err
	}
	out := make([]VideoTopKResult, 0, len(res))
	for _, sr := range res {
		name, local, ok := merged.LocateSeq(sr.Seq)
		if !ok {
			return nil, stats, fmt.Errorf("vaq: result %v outside every video span", sr.Seq)
		}
		out = append(out, VideoTopKResult{Video: name, TopKResult: TopKResult{Seq: local, Score: sr.Score, Degraded: sr.Degraded}})
	}
	return out, stats, nil
}

// topKGlobalSharded fans one RVAQ shard per video over the worker pool,
// wired together by an rvaq.GlobalBound. A video missing one of the
// query's labels contributes no candidates (exactly as its span would
// in the merged namespace); only when every video misses them does the
// query fail with the first shard's error.
func (r *Repository) topKGlobalSharded(names []string, q Query, k int, eo ExecOptions) ([]VideoTopKResult, TopKStats, error) {
	ctx, cancel := eo.queryCtx()
	defer cancel()
	p := eo.pool()
	ctx, gspan := trace.Start(ctx, "topk.global")
	gspan.SetAttr("mode", "sharded")
	gspan.SetInt("videos", int64(len(names)))
	gspan.SetInt("k", int64(k))
	defer gspan.End()
	// An external exchange (the shard tier's per-query one) subsumes
	// the private cross-video bound: local shards publish into it and
	// remote bounds raised into it tighten every local iterator.
	gb := eo.Bound
	if gb == nil {
		gb = rvaq.NewGlobalBound(k)
	}
	type shardOut struct {
		res   []TopKResult
		stats TopKStats
		err   error
	}
	start := time.Now()
	outs := make([]shardOut, len(names))
	videos := make([]*ingest.VideoData, len(names))
	for i, n := range names {
		vd, ok := r.repo.Video(n)
		if !ok {
			return nil, TopKStats{}, fmt.Errorf("%w: %q", ErrVideoNotFound, n)
		}
		videos[i] = vd
	}
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sspan := trace.Start(ctx, "topk.shard")
			sspan.SetAttr("video", names[i])
			sspan.SetInt("shard", int64(i))
			defer sspan.End()
			outs[i].err = p.Do(sctx, func() error {
				opts := eo.rvaqOptions(names[i])
				opts.Bound, opts.Shard = gb, i
				res, stats, err := rvaq.TopKCtx(sctx, videos[i], q, k, opts)
				outs[i].res, outs[i].stats = res, stats
				return err
			})
		}(i)
	}
	wg.Wait()

	var total TopKStats
	var all []VideoTopKResult
	notIngested := 0
	var firstMissing error
	for i, name := range names {
		o := &outs[i]
		if errors.Is(o.err, ingest.ErrNotIngested) {
			// This video's span would simply be empty in the merged
			// namespace; remember the error in case no video has the
			// queried labels at all.
			notIngested++
			if firstMissing == nil {
				firstMissing = o.err
			}
			continue
		}
		if o.err != nil {
			// A shard whose deadline fired while queued contributed
			// nothing; under Partial that makes the merged result
			// incomplete, not failed.
			if eo.partialOnDeadline(o.err, &total) {
				continue
			}
			return nil, total, fmt.Errorf("vaq: video %q: %w", name, o.err)
		}
		total.Merge(o.stats)
		for _, sr := range o.res {
			all = append(all, VideoTopKResult{Video: name, TopKResult: sr})
		}
	}
	if notIngested == len(names) {
		return nil, total, firstMissing
	}
	_, mspan := trace.Start(ctx, "topk.merge")
	mspan.SetInt("results", int64(len(all)))
	sortVideoResults(all)
	if len(all) > k {
		all = all[:k]
	}
	mspan.End()
	total.Runtime = time.Since(start)
	return all, total, nil
}

// sortVideoResults orders merged per-video results deterministically:
// score descending, then video name, then sequence start — the same
// order the merged clip-id namespace induces (videos are laid out in
// sorted-name order there).
func sortVideoResults(all []VideoTopKResult) {
	sort.Slice(all, func(a, b int) bool {
		if all[a].Score != all[b].Score {
			return all[a].Score > all[b].Score
		}
		if all[a].Video != all[b].Video {
			return all[a].Video < all[b].Video
		}
		return all[a].Seq.Lo < all[b].Seq.Lo
	})
}

// TopKAll runs RVAQ against every video in the repository and merges
// the per-video rankings into a global top-k (the paper's multi-video
// setting: each clip identifier is namespaced by its video). It is
// TopKAllOpts with the default execution options.
func (r *Repository) TopKAll(q Query, k int) ([]VideoTopKResult, TopKStats, error) {
	return r.TopKAllOpts(q, k, ExecOptions{})
}

// TopKAllOpts fans the independent per-video RVAQ runs out over the
// worker pool and merges the rankings deterministically (score
// descending, then video name, then sequence start). The aggregate
// stats report the wall clock of the parallel region in Runtime and the
// summed per-video runtimes in CPURuntime, so CPURuntime/Runtime is the
// effective speedup. Results are identical to a sequential run.
func (r *Repository) TopKAllOpts(q Query, k int, eo ExecOptions) ([]VideoTopKResult, TopKStats, error) {
	ctx, cancel := eo.queryCtx()
	defer cancel()
	p := eo.pool()
	ctx, aspan := trace.Start(ctx, "topk.all")
	aspan.SetInt("videos", int64(len(r.repo.Names())))
	aspan.SetInt("k", int64(k))
	defer aspan.End()
	names := r.repo.Names()
	type videoOut struct {
		res   []TopKResult
		stats TopKStats
		err   error
	}
	start := time.Now()
	outs := make([]videoOut, len(names))
	videos := make([]*ingest.VideoData, len(names))
	for i, n := range names {
		vd, ok := r.repo.Video(n)
		if !ok {
			return nil, TopKStats{}, fmt.Errorf("%w: %q", ErrVideoNotFound, n)
		}
		videos[i] = vd
	}
	var wg sync.WaitGroup
	for i := range names {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sctx, sspan := trace.Start(ctx, "topk.video")
			sspan.SetAttr("video", names[i])
			defer sspan.End()
			outs[i].err = p.Do(sctx, func() error {
				res, stats, err := rvaq.TopKCtx(sctx, videos[i], q, k, eo.rvaqOptions(names[i]))
				outs[i].res, outs[i].stats = res, stats
				return err
			})
		}(i)
	}
	wg.Wait()

	var total TopKStats
	var all []VideoTopKResult
	for i, name := range names {
		if err := outs[i].err; err != nil {
			if eo.partialOnDeadline(err, &total) {
				continue
			}
			return nil, total, fmt.Errorf("vaq: video %q: %w", name, err)
		}
		total.Merge(outs[i].stats)
		for _, sr := range outs[i].res {
			all = append(all, VideoTopKResult{Video: name, TopKResult: sr})
		}
	}
	sortVideoResults(all)
	if len(all) > k {
		all = all[:k]
	}
	total.Runtime = time.Since(start)
	return all, total, nil
}
