package vaq

import (
	"context"
	"strconv"
	"strings"
	"testing"

	"vaq/internal/detect"
	"vaq/internal/synth"
	"vaq/internal/trace"
)

// TestTracePipelineStagesOncePerClip locks the shape of a -trace run:
// without short-circuiting (the default), every clip span carries one
// child span per pipeline stage — each object predicate and the action —
// exactly once, in every clip. This is the invariant the vaqquery -trace
// listing relies on.
func TestTracePipelineStagesOncePerClip(t *testing.T) {
	qs, err := synth.YouTubeScaled("q2", DefaultGeometry(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	scene := qs.World.Scene()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	meta := qs.World.Truth.Meta
	stream, err := NewStreamQuery(qs.Query, det, rec, meta.Geom, StreamConfig{
		Dynamic: true, HorizonClips: meta.Clips(),
	})
	if err != nil {
		t.Fatal(err)
	}

	nclips := meta.Clips()
	tr := trace.New(trace.WithCapacity((nclips + 1) * 9))
	root := tr.StartSpan("run", 0)
	stream.AttachTrace(tr, root.ID())
	for c := 0; c < nclips; c++ {
		if _, err := stream.ProcessClip(c); err != nil {
			t.Fatal(err)
		}
	}
	root.End()

	want := map[string]int{}
	for _, o := range qs.Query.Objects {
		want["obj:"+string(o)] = 1
	}
	if qs.Query.Action != "" {
		want["act:"+string(qs.Query.Action)] = 1
	}
	if len(want) < 2 {
		t.Fatalf("workload query %v has fewer than 2 predicates; test needs a multi-stage pipeline", qs.Query)
	}

	trees := tr.Trees()
	if len(trees) != 1 || trees[0].Name != "run" {
		t.Fatalf("want a single retained root span %q, got %d roots", "run", len(trees))
	}
	clips := 0
	trees[0].Walk(func(n *trace.Node) {
		if n.Name != "svaq.clip" {
			return
		}
		clips++
		got := map[string]int{}
		for _, c := range n.Children {
			got[c.Name]++
		}
		for stage, cnt := range want {
			if got[stage] != cnt {
				t.Fatalf("clip span %d: stage %q appears %d times, want %d", n.ID, stage, got[stage], cnt)
			}
		}
		for stage := range got {
			if _, ok := want[stage]; !ok {
				t.Fatalf("clip span %d: unexpected stage %q", n.ID, stage)
			}
		}
	})
	if clips != nclips {
		t.Fatalf("retained %d svaq.clip spans, want %d", clips, nclips)
	}

	// Counter cross-check: the span-level clip count and the flat
	// counter must agree, and detector invocation counters must match
	// the engine's own accounting.
	counters := tr.Counters()
	if counters["svaq.clips"] != int64(nclips) {
		t.Fatalf("svaq.clips counter = %d, want %d", counters["svaq.clips"], nclips)
	}
	if got := counters["detect.frame_invocations"] + counters["detect.shot_invocations"]; got != int64(stream.Invocations()) {
		t.Fatalf("invocation counters sum to %d, engine reports %d", got, stream.Invocations())
	}
}

// TestTraceGlobalTopKSharded is the issue's acceptance scenario: a
// traced end-to-end offline run — in-process ingestion followed by a
// sharded repository-wide top-k — must produce a span tree containing
// the ingest, per-shard top-k, bound-exchange and merge stages, with
// non-zero detector invocation and clip-pruned counters.
func TestTraceGlobalTopKSharded(t *testing.T) {
	tr := trace.New(trace.WithCapacity(1 << 15))
	ctx := trace.NewContext(context.Background(), tr)

	repo, err := OpenRepository(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"coffee_and_cigarettes", "iron_man", "star_wars_3", "titanic"} {
		qs, err := synth.MovieScaled(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		truth := qs.World.Truth
		vd, err := IngestVideoCtx(ctx, det, rec, truth.Meta, truth.ObjectLabels(), truth.ActionLabels(), IngestConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if err := repo.Add(name, vd); err != nil {
			t.Fatal(err)
		}
	}

	q := Query{Action: "smoking", Objects: []Label{"wine_glass", "cup"}}
	results, _, err := repo.TopKGlobalOpts(q, 1, ExecOptions{Ctx: ctx, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("global top-k returned no results")
	}

	seen := map[string]int{}
	for _, root := range tr.Trees() {
		root.Walk(func(n *trace.Node) { seen[n.Name]++ })
	}
	for _, stage := range []string{
		"ingest.video", "ingest.infer", "ingest.stats",
		"topk.global", "topk.shard", "rvaq.topk", "rvaq.iterate",
		"rvaq.exchange", "topk.merge",
	} {
		if seen[stage] == 0 {
			t.Errorf("span tree is missing stage %q (got %v)", stage, seen)
		}
	}
	if seen["topk.shard"] != 4 {
		t.Errorf("want 4 topk.shard spans (one per video), got %d", seen["topk.shard"])
	}

	counters := tr.Counters()
	for _, c := range []string{"detect.frame_invocations", "detect.shot_invocations", "rvaq.clips_pruned", "rvaq.random_accesses"} {
		if counters[c] <= 0 {
			t.Errorf("counter %q = %d, want > 0", c, counters[c])
		}
	}

	// The sharded run records a mode=sharded topk.global span.
	found := false
	for _, root := range tr.Trees() {
		root.Walk(func(n *trace.Node) {
			if n.Name != "topk.global" {
				return
			}
			for _, a := range n.Attrs {
				if a.Key == "mode" && a.Value == "sharded" {
					found = true
				}
			}
		})
	}
	if !found {
		t.Error("no topk.global span with mode=sharded")
	}

	// The varz exposition must carry every counter the JSON snapshot
	// reports, with identical values.
	var sb strings.Builder
	tr.WriteVarz(&sb)
	varz := sb.String()
	for name, v := range counters {
		mn := strings.Map(func(r rune) rune {
			if r == '.' || r == '-' {
				return '_'
			}
			return r
		}, name)
		want := "vaq_" + mn + " "
		line := ""
		for _, l := range strings.Split(varz, "\n") {
			if strings.HasPrefix(l, want) {
				line = l
			}
		}
		if line == "" {
			t.Errorf("varz is missing counter %s", want)
			continue
		}
		if !strings.HasSuffix(line, " "+strconv.FormatInt(v, 10)) {
			t.Errorf("varz line %q disagrees with counter %s=%d", line, name, v)
		}
	}
}
