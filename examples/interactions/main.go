// Interactions: the footnote 2 extension. Beyond object presence, a
// query can constrain the spatial relationship between objects — here a
// loading-dock camera looking for "unloading while a person is near the
// truck". The relation is derived per frame from the detector's bounding
// boxes and fed through the same scan-statistics machinery as any other
// predicate.
//
//	go run ./examples/interactions
package main

import (
	"fmt"
	"log"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/synth"
)

func main() {
	// The scene: a dock where unloading happens a few times an hour,
	// trucks and people come and go.
	spec := synth.Spec{
		Name:             "dock-cam",
		Frames:           54000, // 30 minutes
		Geom:             vaq.DefaultGeometry(),
		Action:           "unloading",
		ActionEpisodes:   synth.EpisodeSpec{MeanOn: 70, MeanOff: 500},
		ActionDistractor: synth.EpisodeSpec{MeanOn: 3, MeanOff: 900},
		Objects: []synth.ObjectSpec{
			{
				Label:          "truck",
				CorrWithAction: 0.95,
				BoundaryJitter: 50,
				Background:     synth.EpisodeSpec{MeanOn: 400, MeanOff: 4000},
			},
			{
				Label:          "person",
				CorrWithAction: 0.9,
				BoundaryJitter: 30,
				Background:     synth.EpisodeSpec{MeanOn: 500, MeanOff: 2500},
				Detectability:  2,
			},
		},
		Seed: 2718,
	}
	world, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	scene := world.Scene()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	meta := world.Truth.Meta

	// The query, with the rel(...) extension in the WHERE clause.
	plan, err := vaq.ParseQuery(`
		SELECT MERGE(clipID) AS Sequence
		FROM (PROCESS dockcam PRODUCE clipID,
		      obj USING ObjectDetector, act USING ActionRecognizer)
		WHERE act = 'unloading'
		  AND obj.include('truck', 'person')
		  AND rel('person', 'near', 'truck')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", plan)

	run := func(p *vaq.Plan) vaq.Sequences {
		stream, err := vaq.NewStream(p, det, rec, meta.Geom, vaq.StreamConfig{
			Dynamic: true, HorizonClips: meta.Clips(),
		})
		if err != nil {
			log.Fatal(err)
		}
		seqs, err := stream.Run(meta.Clips())
		if err != nil {
			log.Fatal(err)
		}
		return seqs
	}

	withRel := run(plan)

	// The same query without the relation, for contrast.
	noRelPlan, err := vaq.ParseQuery(`
		SELECT MERGE(clipID) AS Sequence
		FROM (PROCESS dockcam PRODUCE clipID,
		      obj USING ObjectDetector, act USING ActionRecognizer)
		WHERE act = 'unloading' AND obj.include('truck', 'person')`)
	if err != nil {
		log.Fatal(err)
	}
	noRel := run(noRelPlan)

	fmt.Printf("\nwithout relation: %d sequences covering %d clips\n", len(noRel), noRel.Len())
	fmt.Printf("with rel(person near truck): %d sequences covering %d clips\n", len(withRel), withRel.Len())
	fmt.Println("\nsequences satisfying the interaction query:")
	clipSeconds := float64(meta.Geom.ClipLen()) / float64(meta.Geom.FPS)
	for _, s := range withRel {
		fmt.Printf("  clips %3d..%-3d (%5.0fs..%5.0fs)\n",
			s.Lo, s.Hi, float64(s.Lo)*clipSeconds, float64(s.Hi+1)*clipSeconds)
	}
	if dropped := noRel.Subtract(withRel); dropped.Len() > 0 {
		fmt.Printf("\nthe relation filtered out %d clips where the person was never near the truck\n", dropped.Len())
	}
}
