// Quickstart: parse a VQL query, run it online over a synthetic video
// stream with the SVAQD engine, and print the matching sequences.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/synth"
)

func main() {
	// 1. A query in the paper's SQL-like language: find the stream
	//    segments where leaves are being blown while a car is visible.
	plan, err := vaq.ParseQuery(`
		SELECT MERGE(clipID) AS Sequence
		FROM (PROCESS camera PRODUCE clipID,
		      obj USING ObjectDetector, act USING ActionRecognizer)
		WHERE act = 'blowing_leaves' AND obj.include('car')`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled:", plan)

	// 2. A video source. Real deployments plug in their own detectors;
	//    here a synthetic world stands in for the camera, with
	//    simulated Mask R-CNN / I3D models observing it.
	world, err := synth.YouTubeScaled("q2", vaq.DefaultGeometry(), 0.5)
	if err != nil {
		log.Fatal(err)
	}
	scene := world.World.Scene()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	meta := world.World.Truth.Meta

	// 3. The online engine. Dynamic=true selects SVAQD: no background
	//    probabilities to hand-tune.
	stream, err := vaq.NewStream(plan, det, rec, meta.Geom, vaq.StreamConfig{
		Dynamic:      true,
		HorizonClips: meta.Clips(),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Feed the stream clip by clip (here: the whole video at once).
	seqs, err := stream.Run(meta.Clips())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d sequences over %d clips:\n", len(seqs), meta.Clips())
	clipSeconds := float64(meta.Geom.ClipLen()) / float64(meta.Geom.FPS)
	for _, s := range seqs {
		fmt.Printf("  clips %4d..%-4d  (%.0fs..%.0fs)\n",
			s.Lo, s.Hi, float64(s.Lo)*clipSeconds, float64(s.Hi+1)*clipSeconds)
	}
}
