// Surveillance: the §3.3 motivation scenario. A crossroad camera's
// detection noise varies with traffic — quiet nights, busy rush hours.
// A fixed background probability (SVAQ) tuned for one regime fails in
// the other; SVAQD tracks the change and keeps both precision and
// recall. The example streams the same world through both engines and
// prints their per-phase accuracy.
//
//	go run ./examples/surveillance
package main

import (
	"fmt"
	"log"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/metrics"
	"vaq/internal/synth"
)

func main() {
	// A camera watching for trucks unloading while a person is present.
	spec := synth.Spec{
		Name:             "crossroad-cam",
		Frames:           90000, // 50 minutes at 30 fps
		Geom:             vaq.DefaultGeometry(),
		Action:           "unloading",
		ActionEpisodes:   synth.EpisodeSpec{MeanOn: 60, MeanOff: 700},
		ActionDistractor: synth.EpisodeSpec{MeanOn: 4, MeanOff: 800},
		Objects: []synth.ObjectSpec{{
			Label:          "truck",
			CorrWithAction: 0.95,
			BoundaryJitter: 30,
			Background:     synth.EpisodeSpec{MeanOn: 200, MeanOff: 6000},
			Distractor:     synth.EpisodeSpec{MeanOn: 15, MeanOff: 2000},
		}},
		Seed: 77,
	}
	world, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	// Rush hour begins halfway: false-positive rates jump 8x.
	change := spec.Frames / 2
	world.Drift = synth.StepDrift(change, 1, 8)

	query := vaq.Query{Action: "unloading", Objects: []vaq.Label{"truck"}}
	truth, err := world.Truth.GroundTruthClips(query)
	if err != nil {
		log.Fatal(err)
	}
	nclips := world.Truth.Meta.Clips()
	changeClip := change / world.Truth.Meta.Geom.ClipLen()

	run := func(name string, dynamic bool) vaq.Sequences {
		scene := world.Scene()
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		stream, err := vaq.NewStreamQuery(query, det, rec, world.Truth.Meta.Geom, vaq.StreamConfig{
			Dynamic:      dynamic,
			HorizonClips: nclips,
		})
		if err != nil {
			log.Fatal(err)
		}
		seqs, err := stream.Run(nclips)
		if err != nil {
			log.Fatal(err)
		}
		report(name, seqs, truth, changeClip, nclips)
		return seqs
	}

	fmt.Printf("crossroad camera: %d clips, rush hour starts at clip %d, %d true events\n\n",
		nclips, changeClip, len(truth))
	run("SVAQ  (fixed p0=1e-4)", false)
	run("SVAQD (adaptive)", true)
}

func report(name string, seqs, truth vaq.Sequences, changeClip, nclips int) {
	quiet := interval.Set{{Lo: 0, Hi: changeClip - 1}}
	busy := interval.Set{{Lo: changeClip, Hi: nclips - 1}}
	f := func(region interval.Set) float64 {
		return metrics.SequenceF1(seqs.Intersect(region), truth.Intersect(region),
			metrics.DefaultIOUThreshold).F1
	}
	overall := metrics.SequenceF1(seqs, truth, metrics.DefaultIOUThreshold)
	fmt.Printf("%s: %d sequences reported\n", name, len(seqs))
	fmt.Printf("  quiet phase F1 %.3f | rush hour F1 %.3f | overall F1 %.3f (P %.2f R %.2f)\n\n",
		f(quiet), f(busy), overall.F1, overall.Precision, overall.Recall)
}
