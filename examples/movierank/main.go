// Movierank: the offline case end to end. Ingest two movies into an
// on-disk repository (one-time preprocessing, §4.2), then answer ad-hoc
// top-k queries with RVAQ and compare its table-access cost against the
// Pq-Traverse baseline (§4.3–4.4, Tables 6–8).
//
//	go run ./examples/movierank
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"vaq"
	"vaq/internal/detect"
	"vaq/internal/ingest"
	"vaq/internal/rvaq"
	"vaq/internal/synth"
)

func main() {
	dir, err := os.MkdirTemp("", "vaq-movierank-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	repo, err := vaq.OpenRepository(dir)
	if err != nil {
		log.Fatal(err)
	}

	// Ingestion phase: once per movie, query-independent. Scale 0.4
	// keeps the example fast; drop the scale argument for full length.
	for _, name := range []string{"coffee_and_cigarettes", "iron_man"} {
		start := time.Now()
		qs, err := synth.MovieScaled(name, 0.4)
		if err != nil {
			log.Fatal(err)
		}
		scene := qs.World.Scene()
		det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
		rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
		truth := qs.World.Truth
		vd, err := vaq.IngestVideo(det, rec, truth.Meta,
			truth.ObjectLabels(), truth.ActionLabels(), vaq.IngestConfig{})
		if err != nil {
			log.Fatal(err)
		}
		if err := repo.Add(name, vd); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("ingested %-24s %4d clips, %2d object + %d action tables (%v)\n",
			name, truth.Meta.Clips(), len(vd.ObjTables), len(vd.ActTables),
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()

	// Ad-hoc query 1: smoking scenes with a cup in frame, best five.
	q1 := vaq.Query{Action: "smoking", Objects: []vaq.Label{"cup"}}
	printTopK(repo, "coffee_and_cigarettes", q1, 5)

	// Ad-hoc query 2: a query nobody anticipated at ingestion time —
	// driving scenes with a car — answered from the same metadata.
	q2 := vaq.Query{Action: "driving", Objects: []vaq.Label{"car"}}
	printTopK(repo, "iron_man", q2, 3)

	// Cost comparison on the first query: RVAQ vs Pq-Traverse.
	vd, err := ingest.Load(dir + "/coffee_and_cigarettes")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("access cost, RVAQ vs Pq-Traverse (top-1):")
	_, rs, err := rvaq.TopK(vd, q1, 1, rvaq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	_, ps, err := rvaq.PqTraverse(vd, q1, 1, rvaq.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  RVAQ        %6d random accesses in %v\n", rs.Accesses.Random, rs.Runtime.Round(time.Microsecond))
	fmt.Printf("  Pq-Traverse %6d random accesses in %v (%.1fx more)\n",
		ps.Accesses.Random, ps.Runtime.Round(time.Microsecond),
		float64(ps.Accesses.Random)/float64(rs.Accesses.Random))
}

func printTopK(repo *vaq.Repository, movie string, q vaq.Query, k int) {
	results, stats, err := repo.TopK(movie, q, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d %v on %s (|Pq|=%d, %d random accesses):\n",
		k, q, movie, stats.Candidates, stats.Accesses.Random)
	for i, r := range results {
		fmt.Printf("  %d. clips %4d..%-4d score %8.1f\n", i+1, r.Seq.Lo, r.Seq.Hi, r.Score)
	}
	fmt.Println()
}
