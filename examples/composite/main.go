// Composite: temporal composition of two action queries — the §7
// future-work direction. A dock camera answers "unloading, then the
// truck driving off within a minute": each sub-query runs through the
// standard SVAQD engine, and the temporal operator pairs their result
// sequences.
//
//	go run ./examples/composite
package main

import (
	"fmt"
	"log"

	"vaq"
	"vaq/internal/annot"
	"vaq/internal/detect"
	"vaq/internal/interval"
	"vaq/internal/synth"
)

func main() {
	// A world with two actions: "unloading" episodes, each usually
	// followed by a "driving" episode shortly after.
	geom := vaq.DefaultGeometry()
	spec := synth.Spec{
		Name:           "dock-cam",
		Frames:         90000, // 50 minutes
		Geom:           geom,
		Action:         "unloading",
		ActionEpisodes: synth.EpisodeSpec{MeanOn: 60, MeanOff: 900},
		Objects: []synth.ObjectSpec{{
			Label:          "truck",
			CorrWithAction: 0.95,
			BoundaryJitter: 40,
			Background:     synth.EpisodeSpec{MeanOn: 300, MeanOff: 5000},
		}},
		Seed: 99,
	}
	world, err := synth.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	// Hand-place "driving" episodes right after each unloading episode
	// (the composition target), plus one unrelated drive.
	var driving []interval.Interval
	for _, ep := range world.Truth.Actions["unloading"] {
		driving = append(driving, interval.Interval{Lo: ep.Hi + 10, Hi: ep.Hi + 40})
	}
	driving = append(driving, interval.Interval{Lo: 8000, Hi: 8050})
	world.Truth.AddAction("driving", interval.Normalize(driving))

	scene := world.Scene()
	det := detect.NewSimObjectDetector(scene, detect.MaskRCNN, nil)
	rec := detect.NewSimActionRecognizer(scene, detect.I3D, nil)
	meta := world.Truth.Meta

	run := func(q vaq.Query) vaq.Sequences {
		stream, err := vaq.NewStreamQuery(q, det, rec, meta.Geom, vaq.StreamConfig{
			Dynamic: true, HorizonClips: meta.Clips(),
		})
		if err != nil {
			log.Fatal(err)
		}
		seqs, err := stream.Run(meta.Clips())
		if err != nil {
			log.Fatal(err)
		}
		return seqs
	}

	unloading := run(vaq.Query{Action: "unloading", Objects: []vaq.Label{"truck"}})
	drivingSeqs := run(vaq.Query{Action: annot.Label("driving")})

	fmt.Printf("unloading+truck: %d sequences %v\n", len(unloading), unloading)
	fmt.Printf("driving:         %d sequences %v\n\n", len(drivingSeqs), drivingSeqs)

	// Compose: driving must start within 12 clips (~20s) of unloading
	// ending.
	pairs := vaq.Then(unloading, drivingSeqs, 12)
	fmt.Printf("\"unloading, then driving off\" matches: %d\n", len(pairs))
	clipSeconds := float64(meta.Geom.ClipLen()) / float64(meta.Geom.FPS)
	for _, p := range pairs {
		fmt.Printf("  unload %v -> drive %v (gap %d clips, event spans %.0fs..%.0fs)\n",
			p.A, p.B, p.Gap, float64(p.A.Lo)*clipSeconds, float64(p.B.Hi+1)*clipSeconds)
	}
	fmt.Printf("\ncomposite event spans: %v\n", vaq.SpanOf(pairs))
}
